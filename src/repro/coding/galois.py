"""Finite-field arithmetic over GF(2^m) for BCH code construction.

The BCH codes in :mod:`repro.coding.bch` need a Galois field to build their
parity-check matrices and to run Berlekamp/Chien-style decoding.  This module
provides a compact log/antilog-table implementation sufficient for the small
fields used on-chip (m up to 10).

The exponent and logarithm tables are NumPy ``int64`` arrays so the batch
decoders can evaluate syndromes for whole codeword batches with fancy
indexing (:attr:`GaloisField.exp_table` / :attr:`GaloisField.log_table`);
the scalar arithmetic API keeps returning plain ints.  Because table
construction is the expensive part, :func:`get_field` memoizes field
instances by ``(m, primitive_polynomial)`` so repeated sweeps stop
rebuilding them.
"""

from __future__ import annotations

import functools
from typing import List

import numpy as np

from ..exceptions import ConfigurationError

__all__ = ["GaloisField", "get_field", "DEFAULT_PRIMITIVE_POLYNOMIALS"]


# Primitive polynomials (as integer bit masks, LSB = x^0) for GF(2^m).
DEFAULT_PRIMITIVE_POLYNOMIALS: dict[int, int] = {
    2: 0b111,          # x^2 + x + 1
    3: 0b1011,         # x^3 + x + 1
    4: 0b10011,        # x^4 + x + 1
    5: 0b100101,       # x^5 + x^2 + 1
    6: 0b1000011,      # x^6 + x + 1
    7: 0b10001001,     # x^7 + x^3 + 1
    8: 0b100011101,    # x^8 + x^4 + x^3 + x^2 + 1
    9: 0b1000010001,   # x^9 + x^4 + 1
    10: 0b10000001001, # x^10 + x^3 + 1
}


class GaloisField:
    """The finite field GF(2^m) represented with exponent/log tables.

    Elements are integers in ``[0, 2^m - 1]``; the zero element is 0 and the
    primitive element alpha is 2 (the polynomial ``x``).
    """

    def __init__(self, m: int, primitive_polynomial: int | None = None):
        if m < 2 or m > 16:
            raise ConfigurationError("GF(2^m) supported for 2 <= m <= 16")
        if primitive_polynomial is None:
            if m not in DEFAULT_PRIMITIVE_POLYNOMIALS:
                raise ConfigurationError(f"no default primitive polynomial for m={m}")
            primitive_polynomial = DEFAULT_PRIMITIVE_POLYNOMIALS[m]
        self._m = m
        self._size = 1 << m
        self._poly = primitive_polynomial
        self._exp = np.zeros(2 * self._size, dtype=np.int64)
        self._log = np.zeros(self._size, dtype=np.int64)
        value = 1
        for power in range(self._size - 1):
            self._exp[power] = value
            self._log[value] = power
            value <<= 1
            if value & self._size:
                value ^= primitive_polynomial
        if value != 1:
            raise ConfigurationError(
                f"polynomial {primitive_polynomial:#b} is not primitive for GF(2^{m})"
            )
        # Duplicate the exponent table so products of logs never need a modulo.
        for power in range(self._size - 1, 2 * self._size):
            self._exp[power] = self._exp[power - (self._size - 1)]
        self._exp.setflags(write=False)
        self._log.setflags(write=False)

    # ------------------------------------------------------------------ metadata
    @property
    def m(self) -> int:
        """Field extension degree."""
        return self._m

    @property
    def size(self) -> int:
        """Number of field elements 2^m."""
        return self._size

    @property
    def order(self) -> int:
        """Multiplicative group order 2^m - 1."""
        return self._size - 1

    @property
    def exp_table(self) -> np.ndarray:
        """Read-only antilog table: ``exp_table[i] = alpha^i`` (doubled length).

        Used by the batch BCH decoder to evaluate syndromes with fancy
        indexing instead of per-element Python calls.
        """
        return self._exp

    @property
    def log_table(self) -> np.ndarray:
        """Read-only log table: ``log_table[a] = log_alpha(a)`` (undefined at 0)."""
        return self._log

    # ------------------------------------------------------------------ arithmetic
    def add(self, a: int, b: int) -> int:
        """Field addition (XOR)."""
        return a ^ b

    def multiply(self, a: int, b: int) -> int:
        """Field multiplication via log/antilog tables."""
        if a == 0 or b == 0:
            return 0
        return int(self._exp[self._log[a] + self._log[b]])

    def inverse(self, a: int) -> int:
        """Multiplicative inverse; zero has no inverse."""
        if a == 0:
            raise ZeroDivisionError("zero has no multiplicative inverse in GF(2^m)")
        return int(self._exp[self.order - self._log[a]])

    def divide(self, a: int, b: int) -> int:
        """Field division a / b."""
        return self.multiply(a, self.inverse(b))

    def power(self, a: int, exponent: int) -> int:
        """Raise a field element to an integer power."""
        if a == 0:
            return 0 if exponent > 0 else 1
        log_a = int(self._log[a])
        return int(self._exp[(log_a * exponent) % self.order])

    def alpha_power(self, exponent: int) -> int:
        """Return alpha^exponent where alpha is the primitive element."""
        return int(self._exp[exponent % self.order])

    def log(self, a: int) -> int:
        """Discrete logarithm base alpha."""
        if a == 0:
            raise ValueError("zero has no discrete logarithm")
        return int(self._log[a])

    # ------------------------------------------------------------------ polynomials
    def poly_eval(self, coefficients: List[int], x: int) -> int:
        """Evaluate a polynomial (lowest-order coefficient first) at ``x``."""
        result = 0
        for coefficient in reversed(coefficients):
            result = self.add(self.multiply(result, x), coefficient)
        return result

    def minimal_polynomial(self, element: int) -> List[int]:
        """Minimal polynomial over GF(2) of a field element.

        Returned as a list of 0/1 coefficients, lowest order first.  Used by
        the BCH generator-polynomial construction.
        """
        if element == 0:
            return [0, 1]
        # Conjugacy class of the element under squaring.
        conjugates = []
        current = element
        while current not in conjugates:
            conjugates.append(current)
            current = self.multiply(current, current)
        # Multiply (x - c) over all conjugates; arithmetic stays in GF(2^m)
        # but the result has coefficients in GF(2).
        poly = [1]
        for conjugate in conjugates:
            next_poly = [0] * (len(poly) + 1)
            for degree, coefficient in enumerate(poly):
                next_poly[degree + 1] ^= coefficient
                next_poly[degree] ^= self.multiply(coefficient, conjugate)
            poly = next_poly
        if any(c not in (0, 1) for c in poly):
            raise ConfigurationError("minimal polynomial did not reduce to GF(2) coefficients")
        return poly


@functools.lru_cache(maxsize=None)
def get_field(m: int, primitive_polynomial: int | None = None) -> GaloisField:
    """Memoized :class:`GaloisField` constructor keyed by ``(m, poly)``.

    Field tables are immutable, so sharing one instance across every BCH
    code and sweep iteration is safe and avoids rebuilding the log/antilog
    tables on each construction.
    """
    return GaloisField(m, primitive_polynomial)
