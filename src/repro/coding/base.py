"""Abstract linear block code with batch encoding and syndrome decoding.

Every concrete code in :mod:`repro.coding` (Hamming, shortened Hamming,
SECDED, parity, repetition, BCH) derives from :class:`LinearBlockCode`.  The
base class implements:

* systematic encoding from a generator matrix,
* syndrome-table decoding (single-error correction or general
  minimum-weight coset leaders for small codes),
* block segmentation so arbitrary-length bit streams can be pushed through
  the code, mirroring the paper's interfaces where a 64-bit IP word is
  split across sixteen H(7,4) encoders or one H(71,64) encoder,
* the performance metadata the rest of the library needs: code rate,
  communication-time overhead (paper Section IV-D) and correction
  capability.

Batch API and scalar-wrapper contract
-------------------------------------
The hot path of every Monte-Carlo workload is :meth:`encode_batch` /
:meth:`decode_batch`, which process a ``(B, k)`` message matrix or a
``(B, n)`` received matrix in whole-array NumPy operations: one GF(2)
matmul for encoding, one matmul for all B syndromes, a dot product with
powers of two to pack each syndrome into an integer key, and a dense
``syndrome -> error pattern`` lookup array (built once per code) in place
of a per-call dict probe.  The scalar :meth:`encode_block` and
:meth:`decode_block` are thin wrappers over the batch path (a batch of
one), so every existing caller keeps working and there is exactly one
decoding implementation to validate.  Subclasses that override only
``decode_block`` (the pre-batching extension point) are still honoured:
the base ``decode_batch`` detects the override and loops their scalar
decoder instead of the generic syndrome machinery.  The pre-batching
per-block decoder is preserved as :meth:`_decode_block_reference` and is
used by the equivalence tests and the scalar-baseline benchmarks.

Packed fast path
----------------
The batch API above still moves one byte per bit.  The *packed* twin —
:meth:`encode_batch_packed` / :meth:`decode_batch_packed` — keeps codewords
in ``(B, ceil(n/64))`` ``uint64`` word matrices (:mod:`repro.coding.packed`)
through the whole encode → corrupt → decode chain: encoding XOR-folds
per-byte partial-codeword tables stored packed, syndrome keys gather from
the packed byte image without ever materialising unpacked bits, and
corrections are applied as packed XOR masks.  The unpacked ``encode_batch``
/ ``decode_batch`` are thin pack/unpack wrappers over the packed path (and
remain bit-exact with the pre-packing implementation); subclasses that
override the unpacked batch or scalar decoders are still honoured — the
base ``decode_batch_packed`` detects the override and round-trips through
their implementation.

Bit vectors are numpy ``uint8`` arrays of 0/1 values, most-significant bit
first within a block; the ordering convention only matters for tests since
all analyses are symmetric in bit position.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Optional

import numpy as np

from ..exceptions import CodewordLengthError, ConfigurationError, DecodingFailure
from .matrices import as_gf2, gf2_matmul, gf2_parity_check_from_systematic_generator, hamming_weight
from .packed import (
    byte_lookup_tables,
    fold_byte_tables,
    pack_bits,
    packed_byte_view,
    require_packed_blocks,
    unpack_bits,
    words_per_block,
)

__all__ = [
    "Codeword",
    "DecodeResult",
    "BatchDecodeResult",
    "PackedBatchDecodeResult",
    "LinearBlockCode",
    "encode_blocks",
    "decode_blocks",
    "decode_blocks_scalar",
    "encode_blocks_packed",
    "decode_blocks_packed",
]


@dataclass(frozen=True)
class Codeword:
    """A single encoded block together with the message it encodes."""

    message_bits: np.ndarray
    code_bits: np.ndarray

    def __post_init__(self) -> None:
        object.__setattr__(self, "message_bits", as_gf2(self.message_bits))
        object.__setattr__(self, "code_bits", as_gf2(self.code_bits))

    @property
    def n(self) -> int:
        """Block length of the codeword."""
        return int(self.code_bits.size)

    @property
    def k(self) -> int:
        """Message length of the codeword."""
        return int(self.message_bits.size)


@dataclass(frozen=True)
class DecodeResult:
    """Outcome of decoding a single received block.

    ``detected_error`` is True when the syndrome was non-zero;
    ``corrected`` is True when the decoder believes it repaired the block;
    ``failure`` is True when the decoder knows the error pattern exceeded its
    correction capability (only detectable for codes with minimum distance
    greater than ``2 t + 1``, e.g. SECDED).
    """

    message_bits: np.ndarray
    corrected_codeword: np.ndarray
    detected_error: bool
    corrected: bool
    failure: bool = False

    def __post_init__(self) -> None:
        object.__setattr__(self, "message_bits", as_gf2(self.message_bits))
        object.__setattr__(self, "corrected_codeword", as_gf2(self.corrected_codeword))


@dataclass(frozen=True)
class BatchDecodeResult:
    """Outcome of decoding a whole ``(B, n)`` batch of received blocks.

    The fields mirror :class:`DecodeResult` with one leading batch axis:
    ``message_bits`` is ``(B, k)`` uint8, ``corrected_codewords`` is
    ``(B, n)`` uint8, and the three status fields are boolean ``(B,)``
    vectors.  Indexing with an integer recovers the equivalent scalar
    :class:`DecodeResult` for that block.
    """

    message_bits: np.ndarray
    corrected_codewords: np.ndarray
    detected_error: np.ndarray
    corrected: np.ndarray
    failure: np.ndarray

    def __len__(self) -> int:
        return int(self.message_bits.shape[0])

    def __getitem__(self, index: int) -> DecodeResult:
        return DecodeResult(
            message_bits=self.message_bits[index].copy(),
            corrected_codeword=self.corrected_codewords[index].copy(),
            detected_error=bool(self.detected_error[index]),
            corrected=bool(self.corrected[index]),
            failure=bool(self.failure[index]),
        )

    @property
    def num_blocks(self) -> int:
        """Number of blocks in the batch."""
        return len(self)

    @property
    def num_detected(self) -> int:
        """Number of blocks whose syndrome was non-zero."""
        return int(np.count_nonzero(self.detected_error))

    @property
    def num_corrected(self) -> int:
        """Number of blocks the decoder believes it repaired."""
        return int(np.count_nonzero(self.corrected))

    @property
    def num_failures(self) -> int:
        """Number of blocks with a detected-but-uncorrectable pattern."""
        return int(np.count_nonzero(self.failure))


@dataclass(frozen=True)
class PackedBatchDecodeResult:
    """Outcome of decoding a packed ``(B, ceil(n/64))`` uint64 batch.

    The packed twin of :class:`BatchDecodeResult`: ``corrected_words`` holds
    the corrected codewords in the packed-word layout of
    :mod:`repro.coding.packed` (padding bits zero), and the three status
    fields are boolean ``(B,)`` vectors.  ``unpack()`` recovers the unpacked
    result at the API boundary; packed consumers stay on the words and count
    residual errors with popcounts instead.

    Treat every array as **read-only**: to keep the hot path allocation-free
    the fields may alias each other (the all-clean fast path shares one
    zeros mask between ``corrected`` and ``failure`` and returns the
    caller's received words as ``corrected_words``), and ``unpack()`` slices
    ``message_bits`` out of ``corrected_codewords`` as a view.
    """

    corrected_words: np.ndarray
    detected_error: np.ndarray
    corrected: np.ndarray
    failure: np.ndarray
    n: int
    k: int

    def __len__(self) -> int:
        return int(self.corrected_words.shape[0])

    @property
    def num_blocks(self) -> int:
        """Number of blocks in the batch."""
        return len(self)

    @property
    def num_failures(self) -> int:
        """Number of blocks with a detected-but-uncorrectable pattern."""
        return int(np.count_nonzero(self.failure))

    def unpack(self) -> BatchDecodeResult:
        """Expand to the unpacked :class:`BatchDecodeResult` (one bit per byte)."""
        codewords = unpack_bits(self.corrected_words, self.n)
        return BatchDecodeResult(
            message_bits=codewords[:, : self.k],
            corrected_codewords=codewords,
            detected_error=self.detected_error,
            corrected=self.corrected,
            failure=self.failure,
        )


class LinearBlockCode:
    """A systematic (n, k) linear block code over GF(2).

    Parameters
    ----------
    generator:
        Systematic generator matrix of shape ``(k, n)`` in the form
        ``[I_k | P]``.
    name:
        Human-readable name such as ``"H(7,4)"``; used by the registry, the
        experiment reports and figure legends.
    minimum_distance:
        Known minimum distance of the code.  Required because several
        analytic BER expressions depend on it and exhaustive computation is
        infeasible for codes such as H(71,64).
    """

    #: Largest number of parity bits for which the dense syndrome lookup
    #: array (2^(n-k) rows) is materialised; wider codes fall back to
    #: probing the dict once per *unique* syndrome in the batch.
    _DENSE_SYNDROME_TABLE_MAX_BITS = 22

    #: Cap (in table entries) on the bit-sliced encode lookup tables; codes
    #: wide enough to blow past it fall back to the GF(2) matmul.
    _ENCODE_TABLE_MAX_ENTRIES = 1 << 23

    def __init__(self, generator, *, name: str, minimum_distance: int):
        self._generator = as_gf2(generator)
        if self._generator.ndim != 2:
            raise ConfigurationError("generator matrix must be two-dimensional")
        self._k, self._n = self._generator.shape
        if self._k <= 0 or self._n <= self._k:
            raise ConfigurationError(
                f"invalid code dimensions (n={self._n}, k={self._k}); need n > k >= 1"
            )
        if minimum_distance < 1:
            raise ConfigurationError("minimum distance must be at least 1")
        self._name = str(name)
        self._dmin = int(minimum_distance)
        self._parity_check = gf2_parity_check_from_systematic_generator(self._generator)
        self._syndrome_table: Optional[dict[int, np.ndarray]] = None
        # MSB-first powers of two turning an (n-k)-bit syndrome row into an
        # integer key with one dot product.  Codes with more than 62 parity
        # bits cannot key into an int64; they use multi-word uint64 keys
        # instead (see _syndrome_key_lookup_tables).
        if self._n - self._k <= 62:
            self._syndrome_weights: Optional[np.ndarray] = (
                np.int64(1) << np.arange(self._n - self._k - 1, -1, -1, dtype=np.int64)
            )
        else:
            self._syndrome_weights = None
        self._syndrome_patterns: Optional[np.ndarray] = None
        self._syndrome_known: Optional[np.ndarray] = None
        self._encode_tables: Optional[np.ndarray] = None
        self._syndrome_key_tables: Optional[np.ndarray] = None
        self._packed_encode_tables_cache: Optional[np.ndarray] = None
        self._packed_syndrome_patterns: Optional[np.ndarray] = None
        #: Sparse ``syndrome key -> packed error pattern`` cache for codes too
        #: wide for the dense pattern array.
        self._packed_pattern_cache: dict[int, np.ndarray] = {}

    # ------------------------------------------------------------------ metadata
    @property
    def name(self) -> str:
        """Display name of the code (e.g. ``"H(7,4)"``)."""
        return self._name

    @property
    def n(self) -> int:
        """Block length."""
        return self._n

    @property
    def k(self) -> int:
        """Message length."""
        return self._k

    @property
    def num_parity_bits(self) -> int:
        """Number of redundancy bits per block (n - k)."""
        return self._n - self._k

    @property
    def minimum_distance(self) -> int:
        """Minimum Hamming distance of the code."""
        return self._dmin

    @property
    def correctable_errors(self) -> int:
        """Guaranteed number of correctable errors t = floor((dmin - 1) / 2)."""
        return (self._dmin - 1) // 2

    @property
    def detectable_errors(self) -> int:
        """Guaranteed number of detectable errors (dmin - 1)."""
        return self._dmin - 1

    @property
    def code_rate(self) -> float:
        """Code rate Rc = k / n."""
        return self._k / self._n

    @property
    def communication_time_overhead(self) -> float:
        """Relative transmission-time increase CT = n / k (paper Section IV-D).

        The paper normalises the communication time to the uncoded case, so
        H(7,4) has CT = 1.75 and H(71,64) has CT ~ 1.11.
        """
        return self._n / self._k

    @property
    def generator_matrix(self) -> np.ndarray:
        """Copy of the systematic generator matrix ``[I_k | P]``."""
        return self._generator.copy()

    @property
    def parity_check_matrix(self) -> np.ndarray:
        """Copy of the parity-check matrix ``[P^T | I_{n-k}]``."""
        return self._parity_check.copy()

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"{type(self).__name__}(name={self._name!r}, n={self._n}, k={self._k}, dmin={self._dmin})"

    # ------------------------------------------------------------------ encoding
    @staticmethod
    def _byte_value_bits() -> np.ndarray:
        """``(256, 8)`` matrix of byte values unpacked MSB-first."""
        return np.unpackbits(np.arange(256, dtype=np.uint8)[:, np.newaxis], axis=1)

    def _encode_lookup_tables(self) -> Optional[np.ndarray]:
        """Bit-sliced encode tables: one ``(256, n)`` partial-codeword table per message byte.

        The codeword of a message is the XOR of the per-byte partial
        codewords, turning the GF(2) matmul into ``ceil(k/8)`` table
        gathers — an order of magnitude faster for Monte-Carlo batches.
        Built lazily; None when the code is too wide to table.
        """
        if self._encode_tables is None:
            num_bytes = (self._k + 7) // 8
            if num_bytes * 256 * self._n > self._ENCODE_TABLE_MAX_ENTRIES:
                return None
            bits = self._byte_value_bits()
            tables = np.zeros((num_bytes, 256, self._n), dtype=np.uint8)
            for index in range(num_bytes):
                rows = self._generator[index * 8 : (index + 1) * 8]
                tables[index] = gf2_matmul(bits[:, : rows.shape[0]], rows)
            self._encode_tables = tables
        return self._encode_tables

    def _packed_encode_lookup_tables(self) -> Optional[np.ndarray]:
        """Packed encode tables: ``(ceil(k/8), 256, ceil(n/64))`` uint64.

        The packed image of :meth:`_encode_lookup_tables` — each per-byte
        partial codeword stored as words, so packed encoding is the same
        XOR-fold of table gathers moving 8x less data.
        """
        if self._packed_encode_tables_cache is None:
            if self._encode_lookup_tables() is None:
                return None
            # The per-bit contribution of message bit i is generator row i
            # (packed); the shared byte-sliced builder folds them into the
            # same tables as packing the unpacked per-byte tables would.
            self._packed_encode_tables_cache = byte_lookup_tables(pack_bits(self._generator))
        return self._packed_encode_tables_cache

    def encode_batch(self, messages) -> np.ndarray:
        """Encode a ``(B, k)`` message matrix into a ``(B, n)`` codeword matrix.

        Thin pack/unpack wrapper over :meth:`encode_batch_packed` (bit-exact
        with the pre-packing table fold); codes too wide for the lookup
        tables fall back to a single GF(2) matrix product.
        """
        blocks = as_gf2(messages)
        if blocks.ndim != 2 or blocks.shape[1] != self._k:
            raise CodewordLengthError(
                f"{self._name}: expected a (B, {self._k}) message matrix, "
                f"got shape {blocks.shape}"
            )
        if self._encode_lookup_tables() is None:
            return gf2_matmul(blocks, self._generator)
        return unpack_bits(self.encode_batch_packed(pack_bits(blocks)), self._n)

    def encode_batch_packed(self, message_words) -> np.ndarray:
        """Encode a packed ``(B, ceil(k/64))`` message matrix into packed codewords.

        The hot path of the packed pipeline: the codeword of each message is
        the XOR of per-byte partial codewords gathered from the packed
        lookup tables, indexed by the bytes of the packed message image —
        no unpacked bit ever materialises.  Padding bits of the input must
        be zero (the :func:`~repro.coding.packed.pack_bits` invariant).
        """
        words = self._require_packed(message_words, self._k, "message")
        tables = self._packed_encode_lookup_tables()
        if tables is None:
            return pack_bits(gf2_matmul(unpack_bits(words, self._k), self._generator))
        return fold_byte_tables(tables, packed_byte_view(words))

    def encode_block(self, message_bits) -> np.ndarray:
        """Encode exactly one k-bit message block into an n-bit codeword."""
        message = as_gf2(message_bits).ravel()
        if message.size != self._k:
            raise CodewordLengthError(
                f"{self._name}: expected a {self._k}-bit message, got {message.size} bits"
            )
        return self.encode_batch(message[np.newaxis, :])[0]

    def encode(self, bits) -> np.ndarray:
        """Encode a bit stream whose length is a multiple of ``k``.

        The stream is split into consecutive k-bit blocks which are encoded
        independently (one batched matmul), matching the parallel encoder
        banks of the paper's transmitter interface.
        """
        stream = as_gf2(bits).ravel()
        if stream.size % self._k != 0:
            raise CodewordLengthError(
                f"{self._name}: stream length {stream.size} is not a multiple of k={self._k}"
            )
        return self.encode_batch(stream.reshape(-1, self._k)).reshape(-1)

    # ------------------------------------------------------------------ decoding
    def syndrome(self, received_bits) -> np.ndarray:
        """Syndrome ``H r^T`` of a received n-bit block."""
        received = as_gf2(received_bits).ravel()
        if received.size != self._n:
            raise CodewordLengthError(
                f"{self._name}: expected a {self._n}-bit block, got {received.size} bits"
            )
        return gf2_matmul(self._parity_check, received[:, np.newaxis])[:, 0]

    def _build_syndrome_table(self) -> dict[int, np.ndarray]:
        """Map syndrome integers to minimum-weight error patterns.

        The default implementation covers all single-bit error patterns,
        which is exact for Hamming codes (t = 1) and a best-effort choice for
        larger-distance codes; subclasses with higher correction capability
        override :meth:`decode_batch` or extend the table.
        """
        table: dict[int, np.ndarray] = {}
        for position in range(self._n):
            error = np.zeros(self._n, dtype=np.uint8)
            error[position] = 1
            key = self._syndrome_key(self.syndrome(error))
            table.setdefault(key, error)
        return table

    @staticmethod
    def _syndrome_key(syndrome: np.ndarray) -> int:
        """Pack a syndrome bit vector into an integer key (MSB first)."""
        bits = np.asarray(syndrome, dtype=np.uint8).ravel()
        if bits.size == 0:
            return 0
        packed = np.packbits(bits)
        # packbits pads the last byte on the LSB side; shift it back out so
        # the key equals sum(bit[i] << (size - 1 - i)).
        return int.from_bytes(packed.tobytes(), "big") >> (-bits.size % 8)

    def _syndrome_dict(self) -> dict[int, np.ndarray]:
        if self._syndrome_table is None:
            self._syndrome_table = self._build_syndrome_table()
        return self._syndrome_table

    def _syndrome_lookup_arrays(self) -> Optional[tuple[np.ndarray, np.ndarray]]:
        """Dense ``key -> error pattern`` array plus a ``key is known`` mask.

        Built once per code from the syndrome dict; returns None for codes
        with too many parity bits to materialise 2^(n-k) rows.
        """
        num_parity = self._n - self._k
        if num_parity > self._DENSE_SYNDROME_TABLE_MAX_BITS:
            return None
        if self._syndrome_patterns is None:
            size = 1 << num_parity
            patterns = np.zeros((size, self._n), dtype=np.uint8)
            known = np.zeros(size, dtype=bool)
            for key, error in self._syndrome_dict().items():
                patterns[key] = error
                known[key] = True
            self._syndrome_patterns = patterns
            self._syndrome_known = known
        return self._syndrome_patterns, self._syndrome_known

    def _syndrome_key_lookup_tables(self) -> np.ndarray:
        """Bit-sliced syndrome-key tables: ``(ceil(n/8), 256, ...)`` partial keys.

        Because packing to a key commutes with XOR, the key of a received
        block is the XOR of per-byte partial keys, so the whole batch's
        syndrome keys come from ``ceil(n/8)`` table gathers instead of a
        matmul plus a powers-of-two dot product.  Codes with at most 62
        parity bits key into scalar ``int64`` entries; wider codes store each
        partial key as the *packed words* of the syndrome itself
        (``ceil((n-k)/64)`` uint64 per entry), which XOR-compose exactly the
        same way — no width limit, no scalar fallback.
        """
        if self._syndrome_key_tables is None:
            if self._syndrome_weights is not None:
                # The partial key of received bit i is the packed syndrome of
                # the unit error at i — one dot product per parity-check
                # column.
                contributions = self._parity_check.T.astype(np.int64) @ self._syndrome_weights
            else:
                contributions = pack_bits(self._parity_check.T)
            self._syndrome_key_tables = byte_lookup_tables(contributions)
        return self._syndrome_key_tables

    def _batch_syndrome_keys(self, blocks: np.ndarray) -> np.ndarray:
        """Packed integer syndrome keys of an unpacked ``(B, n)`` block matrix."""
        return self._batch_syndrome_keys_packed(pack_bits(blocks))

    def _batch_syndrome_keys_packed(self, words: np.ndarray) -> np.ndarray:
        """Integer syndrome keys gathered straight from the packed byte image.

        Packing a syndrome to its key commutes with XOR, so the key of each
        block is the XOR of per-byte partial keys — ``ceil(n/8)`` table
        gathers over the bytes of the packed words, never touching unpacked
        bits.
        """
        return fold_byte_tables(self._syndrome_key_lookup_tables(), packed_byte_view(words))

    def _require_blocks(self, received) -> np.ndarray:
        """Validate and coerce a ``(B, n)`` received matrix."""
        blocks = as_gf2(received)
        if blocks.ndim != 2 or blocks.shape[1] != self._n:
            raise CodewordLengthError(
                f"{self._name}: expected a (B, {self._n}) received matrix, "
                f"got shape {blocks.shape}"
            )
        return blocks

    def _require_packed(self, words, num_bits: int, what: str = "received") -> np.ndarray:
        """Validate a ``(B, ceil(num_bits/64))`` packed uint64 matrix.

        Shared validator from :mod:`repro.coding.packed`, re-raised as a
        :class:`CodewordLengthError` carrying the code's name.
        """
        try:
            return require_packed_blocks(words, num_bits, what=what)
        except ConfigurationError as error:
            raise CodewordLengthError(f"{self._name}: {error}") from None

    def _packed_syndrome_lookup_arrays(self) -> Optional[tuple[np.ndarray, np.ndarray]]:
        """Dense ``key -> packed error pattern`` array plus the known mask."""
        dense = self._syndrome_lookup_arrays()
        if dense is None:
            return None
        if self._packed_syndrome_patterns is None:
            patterns, _ = dense
            self._packed_syndrome_patterns = pack_bits(patterns)
        return self._packed_syndrome_patterns, self._syndrome_known

    def _packed_pattern_for_key(self, key: int) -> Optional[np.ndarray]:
        """Packed error pattern of one syndrome key (sparse-table codes only)."""
        cached = self._packed_pattern_cache.get(key)
        if cached is None:
            pattern = self._syndrome_dict().get(key)
            if pattern is None:
                return None
            cached = pack_bits(pattern[np.newaxis, :])[0]
            self._packed_pattern_cache[key] = cached
        return cached

    def _syndrome_words_to_key(self, words: np.ndarray) -> int:
        """Python-int key of one packed multi-word syndrome.

        The byte image of the packed words *is* ``np.packbits`` of the
        syndrome bits, so the big-endian integer of its meaningful bytes —
        shifted past the sub-byte padding — equals :meth:`_syndrome_key` of
        the same syndrome for any number of parity bits.
        """
        num_parity = self._n - self._k
        image = packed_byte_view(words[np.newaxis, :])[0]
        return int.from_bytes(image[: -(-num_parity // 8)].tobytes(), "big") >> (-num_parity % 8)

    def decode_batch(self, received, *, strict: bool = False) -> BatchDecodeResult:
        """Decode a whole ``(B, n)`` batch by vectorized syndrome lookup.

        Thin pack/unpack wrapper over :meth:`decode_batch_packed`, preserved
        bit-exactly against the pre-packing implementation: all B syndromes
        become integer keys through packed byte-table gathers, corrections
        are applied as packed XOR masks, and the result is unpacked once at
        this API boundary.  Blocks whose syndrome has no table entry keep
        their received bits and are flagged as failures (raising
        :class:`DecodingFailure` in ``strict`` mode), exactly like the
        scalar decoder.  The returned arrays may share memory with each
        other (``message_bits`` is a view into ``corrected_codewords``);
        treat them as read-only.
        """
        if type(self).decode_block is not LinearBlockCode.decode_block:
            # A subclass customised only the scalar decoder (the pre-batching
            # extension point); honour its semantics block by block rather
            # than silently decoding with the base syndrome machinery.
            blocks = self._require_blocks(received)
            return _assemble_batch(
                self, [self.decode_block(block, strict=strict) for block in blocks]
            )
        blocks = self._require_blocks(received)
        return self.decode_batch_packed(pack_bits(blocks), strict=strict).unpack()

    def decode_batch_packed(self, received_words, *, strict: bool = False) -> PackedBatchDecodeResult:
        """Decode a packed ``(B, ceil(n/64))`` uint64 batch without unpacking.

        The packed fast path: syndrome keys gather from the packed byte
        image, the dense syndrome table is stored as packed XOR masks, and
        corrected codewords stay packed.  Subclasses that override only the
        unpacked ``decode_batch`` / ``decode_block`` are honoured by
        round-tripping through their implementation (bit-exact, just not
        packed-fast).
        """
        words = self._require_packed(received_words, self._n)
        if (
            type(self).decode_block is not LinearBlockCode.decode_block
            or type(self).decode_batch is not LinearBlockCode.decode_batch
        ):
            # Honour subclass decoding semantics through the unpacked path.
            # ``decode_batch`` returns before re-packing in every such case,
            # so this cannot recurse.
            result = self.decode_batch(unpack_bits(words, self._n), strict=strict)
            return _pack_batch_result(self, result)
        keys = self._batch_syndrome_keys_packed(words)
        detected = keys != 0 if keys.ndim == 1 else keys.any(axis=1)
        if not detected.any():
            # All-clean fast path: no corrections, so the received words are
            # returned as-is and one shared zeros mask serves both status
            # fields (no per-call copies).
            clean = np.zeros(words.shape[0], dtype=bool)
            return PackedBatchDecodeResult(
                corrected_words=words,
                detected_error=detected,
                corrected=clean,
                failure=clean,
                n=self._n,
                k=self._k,
            )
        dense = self._packed_syndrome_lookup_arrays()
        if dense is not None:
            patterns, known = dense
            errors = patterns[keys]
            known_mask = known[keys]
        else:
            errors = np.zeros_like(words)
            known_mask = np.zeros(words.shape[0], dtype=bool)
            if keys.ndim == 1:
                unique_keys, inverse = np.unique(keys, return_inverse=True)
                int_keys = [int(key) for key in unique_keys]
            else:
                # Multi-word keys (> 62 parity bits): dedupe whole key rows
                # and bridge each unique row to the Python-int vocabulary of
                # the syndrome dict once.
                unique_keys, inverse = np.unique(keys, axis=0, return_inverse=True)
                int_keys = [self._syndrome_words_to_key(row) for row in unique_keys]
            inverse = np.asarray(inverse).reshape(-1)
            for index, key in enumerate(int_keys):
                if key == 0:
                    continue
                pattern = self._packed_pattern_for_key(key)
                if pattern is None:
                    continue
                mask = inverse == index
                errors[mask] = pattern
                known_mask[mask] = True
        corrected_words = words ^ errors
        corrected = detected & known_mask
        failure = detected & ~known_mask
        if strict and failure.any():
            first = int(np.argmax(failure))
            raise DecodingFailure(
                f"{self._name}: uncorrectable syndrome "
                f"{self.syndrome(unpack_bits(words[first], self._n)).tolist()}"
            )
        return PackedBatchDecodeResult(
            corrected_words=corrected_words,
            detected_error=detected,
            corrected=corrected,
            failure=failure,
            n=self._n,
            k=self._k,
        )

    def decode_block(self, received_bits, *, strict: bool = False) -> DecodeResult:
        """Decode one received block (thin wrapper over :meth:`decode_batch`)."""
        received = as_gf2(received_bits).ravel()
        if received.size != self._n:
            raise CodewordLengthError(
                f"{self._name}: expected a {self._n}-bit block, got {received.size} bits"
            )
        return self.decode_batch(received[np.newaxis, :], strict=strict)[0]

    def _decode_block_reference(self, received_bits, *, strict: bool = False) -> DecodeResult:
        """Pre-batching per-block decoder (dict probe per call).

        Kept as the independent reference implementation for the
        batch/scalar equivalence tests and the scalar-baseline benchmarks;
        production callers go through :meth:`decode_batch`.
        """
        received = as_gf2(received_bits).ravel()
        if received.size != self._n:
            raise CodewordLengthError(
                f"{self._name}: expected a {self._n}-bit block, got {received.size} bits"
            )
        syndrome = self.syndrome(received)
        if not syndrome.any():
            return DecodeResult(
                message_bits=received[: self._k].copy(),
                corrected_codeword=received.copy(),
                detected_error=False,
                corrected=False,
            )
        error = self._syndrome_dict().get(self._syndrome_key(syndrome))
        if error is None:
            if strict:
                raise DecodingFailure(f"{self._name}: uncorrectable syndrome {syndrome.tolist()}")
            return DecodeResult(
                message_bits=received[: self._k].copy(),
                corrected_codeword=received.copy(),
                detected_error=True,
                corrected=False,
                failure=True,
            )
        corrected = received ^ error
        return DecodeResult(
            message_bits=corrected[: self._k].copy(),
            corrected_codeword=corrected,
            detected_error=True,
            corrected=True,
        )

    def decode(self, bits, *, strict: bool = False) -> np.ndarray:
        """Decode a bit stream whose length is a multiple of ``n``.

        Returns the concatenated decoded messages (computed through the
        batch path); per-block status information is available through
        :meth:`decode_batch` / :meth:`decode_block`.
        """
        stream = as_gf2(bits).ravel()
        if stream.size % self._n != 0:
            raise CodewordLengthError(
                f"{self._name}: stream length {stream.size} is not a multiple of n={self._n}"
            )
        blocks = stream.reshape(-1, self._n)
        if blocks.shape[0] == 0:
            return np.zeros(0, dtype=np.uint8)
        return self.decode_batch(blocks, strict=strict).message_bits.reshape(-1)

    # ------------------------------------------------------------------ helpers
    def codewords(self) -> Iterable[Codeword]:
        """Iterate over every codeword of the code (small codes only).

        Intended for tests; refuses codes with more than 2^16 codewords.
        """
        if self._k > 16:
            raise ConfigurationError(
                f"refusing to enumerate 2^{self._k} codewords; use analytic tools instead"
            )
        for value in range(1 << self._k):
            message = np.array([(value >> bit) & 1 for bit in range(self._k)], dtype=np.uint8)
            yield Codeword(message_bits=message, code_bits=self.encode_block(message))

    def is_codeword(self, bits) -> bool:
        """Check whether an n-bit vector lies in the code."""
        return not self.syndrome(bits).any()

    def codeword_weight(self, message_bits) -> int:
        """Hamming weight of the codeword encoding ``message_bits``."""
        return hamming_weight(self.encode_block(message_bits))


# ---------------------------------------------------------------------- helpers
def encode_blocks(code, messages) -> np.ndarray:
    """Encode a ``(B, k)`` batch with ``code``, using its batch API if present.

    Codes outside this package only need the scalar ``encode_block`` to stay
    compatible with the simulators; the per-block fallback keeps them
    working at the old speed.
    """
    encode_batch = getattr(code, "encode_batch", None)
    if encode_batch is not None:
        return encode_batch(messages)
    blocks = as_gf2(messages)
    if blocks.shape[0] == 0:
        return np.zeros((0, code.n), dtype=np.uint8)
    return np.stack([code.encode_block(block) for block in blocks])


def _assemble_batch(code, results: list[DecodeResult]) -> BatchDecodeResult:
    """Stack per-block :class:`DecodeResult` objects into a batch result."""
    if not results:
        return BatchDecodeResult(
            message_bits=np.zeros((0, code.k), dtype=np.uint8),
            corrected_codewords=np.zeros((0, code.n), dtype=np.uint8),
            detected_error=np.zeros(0, dtype=bool),
            corrected=np.zeros(0, dtype=bool),
            failure=np.zeros(0, dtype=bool),
        )
    return BatchDecodeResult(
        message_bits=np.stack([r.message_bits for r in results]),
        corrected_codewords=np.stack([r.corrected_codeword for r in results]),
        detected_error=np.array([r.detected_error for r in results], dtype=bool),
        corrected=np.array([r.corrected for r in results], dtype=bool),
        failure=np.array([r.failure for r in results], dtype=bool),
    )


def decode_blocks_scalar(code: LinearBlockCode, blocks: np.ndarray, *, strict: bool = False) -> BatchDecodeResult:
    """Per-block reference decoding of a validated ``(B, n)`` matrix.

    Kept as the independent reference implementation for the equivalence
    tests (including the multi-word syndrome-key path of codes with more
    than 62 parity bits) and the scalar-baseline benchmarks.
    """
    return _assemble_batch(
        code, [code._decode_block_reference(block, strict=strict) for block in blocks]
    )


def decode_blocks(code, received, *, strict: bool = False) -> BatchDecodeResult:
    """Decode a ``(B, n)`` batch with ``code``, using its batch API if present.

    Falls back to a per-block ``decode_block`` loop for duck-typed codes
    that predate the batch API, assembling the same
    :class:`BatchDecodeResult`.
    """
    decode_batch = getattr(code, "decode_batch", None)
    if decode_batch is not None:
        return decode_batch(received, strict=strict)
    blocks = as_gf2(received)
    return _assemble_batch(code, [code.decode_block(block, strict=strict) for block in blocks])


def _pack_batch_result(code, result: BatchDecodeResult) -> PackedBatchDecodeResult:
    """Pack an unpacked batch result into its packed twin."""
    return PackedBatchDecodeResult(
        corrected_words=pack_bits(result.corrected_codewords),
        detected_error=result.detected_error,
        corrected=result.corrected,
        failure=result.failure,
        n=int(code.n),
        k=int(code.k),
    )


def encode_blocks_packed(code, message_words) -> np.ndarray:
    """Encode a packed ``(B, ceil(k/64))`` batch with ``code``.

    Uses the code's native :meth:`~LinearBlockCode.encode_batch_packed` when
    present; duck-typed codes without a packed API round-trip through the
    unpacked helper (bit-exact, just not packed-fast).
    """
    encode_packed = getattr(code, "encode_batch_packed", None)
    if encode_packed is not None:
        return encode_packed(message_words)
    return pack_bits(encode_blocks(code, unpack_bits(message_words, int(code.k))))


def decode_blocks_packed(code, received_words, *, strict: bool = False) -> PackedBatchDecodeResult:
    """Decode a packed ``(B, ceil(n/64))`` batch with ``code``.

    Packed twin of :func:`decode_blocks`: native
    :meth:`~LinearBlockCode.decode_batch_packed` when the code has one,
    otherwise an unpack → decode → repack fallback with identical results.
    """
    decode_packed = getattr(code, "decode_batch_packed", None)
    if decode_packed is not None:
        return decode_packed(received_words, strict=strict)
    result = decode_blocks(code, unpack_bits(received_words, int(code.n)), strict=strict)
    return _pack_batch_result(code, result)
