"""Regression benchmark: the fault machinery must not tax the fault-free path.

PR 6 threads hard-fault plumbing (health queries, degradation ladder, ARQ
backoff, availability accounting) through the network engine's hot event
loop.  This benchmark guards the deal the implementation made: **a simulator
constructed without a fault model pays nothing** — every fault branch hangs
off ``self._failures is not None`` checks that constant-fold to the legacy
path.  Two legs are timed:

* ``fault_free`` — the legacy constructor, identical workload to
  ``bench_netsim.py``.  Gated on the same absolute floor (100k simulated
  packet events/s).  The ratio against the stored ``BENCH_netsim.json``
  throughput is recorded for trend inspection; session-to-session timing
  noise on shared runners is ~15%, so the strict ``>= 0.95`` ratio assert
  only arms under ``REPRO_BENCH_STRICT=1``.
* ``faulted_ladder`` — the mixed hard-fault scenario with the degradation
  ladder, adaptive controller, backoff and timeouts all enabled: the
  worst-case per-event overhead, timed for the JSON artefact (no gate — the
  faulted path is allowed to cost what graceful degradation costs).

Run either way::

    PYTHONPATH=src python benchmarks/bench_failures.py
    pytest benchmarks/bench_failures.py -q
"""

from __future__ import annotations

import os
import sys
import time

_SRC = os.path.join(os.path.dirname(os.path.dirname(os.path.abspath(__file__))), "src")
if _SRC not in sys.path:
    sys.path.insert(0, _SRC)
_HERE = os.path.dirname(os.path.abspath(__file__))
if _HERE not in sys.path:
    sys.path.insert(0, _HERE)

import benchlib  # noqa: E402
from repro.config import DEFAULT_CONFIG  # noqa: E402
from repro.experiments.network import request_rate_for_load  # noqa: E402
from repro.manager.policies import DegradationLadder, margin_levels  # noqa: E402
from repro.manager.runtime import AdaptiveEccController  # noqa: E402
from repro.netsim import NetworkSimulator, make_fault_model  # noqa: E402
from repro.traffic.generators import UniformTrafficGenerator  # noqa: E402

NUM_REQUESTS = 2000
FAULTED_REQUESTS = 600
PAYLOAD_BITS = 65536
LOAD = 0.5
PACKET_EVENT_GATE_PER_SEC = 100_000.0
STORED_RATIO_FLOOR = 0.95
_JSON_PATH = os.path.join(_HERE, "BENCH_failures.json")
_NETSIM_JSON_PATH = os.path.join(_HERE, "BENCH_netsim.json")


def _requests(num_requests: int, seed: int):
    rate = request_rate_for_load(LOAD, payload_bits=PAYLOAD_BITS)
    generator = UniformTrafficGenerator(
        12, mean_request_rate_hz=rate, payload_bits=PAYLOAD_BITS, seed=seed
    )
    return list(generator.generate(num_requests))


def _timed_run(simulator: NetworkSimulator, requests) -> dict:
    start = time.perf_counter()
    result = simulator.run(requests)
    seconds = time.perf_counter() - start
    return {
        "seconds": seconds,
        "transfers": len(result.records),
        "packets": result.packets_sent,
        "events": result.events_processed,
        "packets_per_sec": result.packets_sent / seconds,
        "events_per_sec": result.events_processed / seconds,
    }


def _faulted_simulator(horizon_s: float, engine: str = "batched") -> NetworkSimulator:
    """The full degradation stack: mixed faults, ladder, controller, ARQ."""
    config = DEFAULT_CONFIG
    failures = make_fault_model(
        "mixed", config.num_onis, config.num_wavelengths, seed=5, horizon_s=horizon_s
    )
    margins = margin_levels(max(failures.worst_case_penalty, 8.0))
    return NetworkSimulator(
        config=config,
        seed=11,
        engine=engine,
        controller=AdaptiveEccController(margins=margins, mode="adaptive"),
        telemetry_seed=13,
        failures=failures,
        degradation=DegradationLadder(
            margins=margins, num_wavelengths=config.num_wavelengths
        ),
        retry_backoff_s=0.01 * horizon_s,
        transfer_timeout_s=0.5 * horizon_s,
    )


def stored_netsim_packets_per_sec() -> float | None:
    """Probabilistic-leg throughput recorded by the last bench_netsim run."""
    stored = benchlib.read_bench_results(_NETSIM_JSON_PATH)
    try:
        return float(stored["probabilistic"]["packets_per_sec"])
    except (KeyError, TypeError, ValueError):
        return None


def run_benchmark(
    num_requests: int = NUM_REQUESTS,
    faulted_requests: int = FAULTED_REQUESTS,
    *,
    include_fault_free: bool = True,
    include_faulted: bool = True,
    include_reference: bool = False,
) -> dict:
    results: dict = {
        "engine": "batched",
        "load": LOAD,
        "payload_bits": PAYLOAD_BITS,
        "num_requests": num_requests,
        "packet_event_gate_per_sec": PACKET_EVENT_GATE_PER_SEC,
        "stored_ratio_floor": STORED_RATIO_FLOOR,
    }
    if include_fault_free:
        requests = _requests(num_requests, seed=7)
        fault_free = NetworkSimulator(seed=11)
        # Warm the manager's candidate/laser caches so the timing measures
        # the event loop, not the one-off operating-point solves.
        fault_free.run(requests[:20])
        results["fault_free"] = _timed_run(fault_free, requests)
        results["gate_met"] = (
            results["fault_free"]["packets_per_sec"] >= PACKET_EVENT_GATE_PER_SEC
        )
        stored = stored_netsim_packets_per_sec()
        results["stored_netsim_packets_per_sec"] = stored
        results["ratio_vs_stored_netsim"] = (
            results["fault_free"]["packets_per_sec"] / stored
            if stored
            else None
        )
    if include_faulted:
        requests = _requests(faulted_requests, seed=7)
        horizon_s = requests[-1].arrival_time_s
        faulted = _faulted_simulator(horizon_s)
        faulted.run(requests[:20])
        results["faulted_ladder"] = _timed_run(_faulted_simulator(horizon_s), requests)
        if include_fault_free:
            results["fault_free_speedup_vs_faulted"] = (
                results["fault_free"]["packets_per_sec"]
                / results["faulted_ladder"]["packets_per_sec"]
            )
        if include_reference:
            # Pin the legacy per-event engine on the identical faulted stack
            # so the artefact records the epoch-batched engine's margin.
            reference = _faulted_simulator(horizon_s, engine="reference")
            reference.run(requests[:20])
            results["reference_baseline"] = _timed_run(
                _faulted_simulator(horizon_s, engine="reference"), requests
            )
            results["batched_speedup_vs_reference"] = (
                results["faulted_ladder"]["packets_per_sec"]
                / results["reference_baseline"]["packets_per_sec"]
            )
    return results


def test_fault_free_path_meets_packet_event_gate():
    """Acceptance gate: the legacy constructor still clears 100k packets/s."""
    results = run_benchmark(num_requests=600, include_faulted=False)
    assert results["fault_free"]["packets_per_sec"] >= PACKET_EVENT_GATE_PER_SEC, results
    # The ratio against the stored baseline is informational by default
    # (shared-runner timing noise is ~15%); CI sets REPRO_BENCH_STRICT=0.
    if os.environ.get("REPRO_BENCH_STRICT") == "1":
        ratio = results["ratio_vs_stored_netsim"]
        assert ratio is None or ratio >= STORED_RATIO_FLOOR, results


def test_faulted_ladder_run_completes_and_recovers():
    """Sanity: the worst-case degradation stack runs end-to-end."""
    requests = _requests(200, seed=7)
    simulator = _faulted_simulator(requests[-1].arrival_time_s)
    result = simulator.run(requests)
    metrics = result.metrics()
    assert metrics.fault_transitions > 0
    assert metrics.availability < 1.0
    assert metrics.transfers_completed > 0


def main(argv: list[str] | None = None) -> int:
    args = benchlib.parse_args(argv, description=__doc__)
    results = run_benchmark(include_reference=True)
    benchlib.write_bench_json(_JSON_PATH, "failures", results)
    if args.history:
        benchlib.append_history(
            args.history,
            "failures",
            {
                "fault_free_packets_per_sec": results["fault_free"]["packets_per_sec"],
                "faulted_ladder_packets_per_sec": results["faulted_ladder"][
                    "packets_per_sec"
                ],
            },
        )
    free = results["fault_free"]
    faulted = results["faulted_ladder"]
    ratio = results["ratio_vs_stored_netsim"]
    ratio_text = f", ratio vs stored netsim: {ratio:.2f}" if ratio is not None else ""
    print(
        f"netsim fault-free: {free['packets_per_sec']:,.0f} packets/s "
        f"(gate >= {results['packet_event_gate_per_sec']:,.0f}: "
        f"{results['gate_met']}{ratio_text}); "
        f"faulted mixed+ladder: {faulted['packets_per_sec']:,.0f} packets/s "
        f"({results['fault_free_speedup_vs_faulted']:.1f}x slower than fault-free, "
        f"{results['batched_speedup_vs_reference']:.1f}x over the reference engine)"
    )
    print(f"[wrote {_JSON_PATH}]")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
