"""Packet-outcome sampling for the network simulator.

A transfer is carried as fixed-size packets, each protected by an optional
CRC and encoded with the link configuration's ECC.  What the engine needs
per (re)transmission attempt is only the *outcome*: how many packets failed
and were caught by the CRC (candidates for ARQ retransmission), how many
slipped through with residual errors, and how many payload bits those
residual errors corrupted.  Two interchangeable samplers produce that
outcome:

* :class:`ProbabilisticOutcomeSampler` — the fast default.  Per-block
  decode failures are Bernoulli draws from the decoder's analytic
  frame-error probability (:func:`repro.coding.theory.block_error_probability`,
  exact for the paper's Hamming codes), sampled batch-at-a-time for the
  whole attempt; CRC escapes use the standard ``2^-width`` random-error
  approximation, and residual bit counts are drawn with the
  dominant-error-event conditional mean (a weight-``2t+1`` codeword error
  per failed block).  No codeword ever materialises, which is what keeps
  the engine in the 10^6 packets/s range.
* :class:`BitExactOutcomeSampler` — the cross-validation twin.  Every
  packet is CRC-appended, encoded through the PR 1 batch coding API,
  corrupted by a real fault-injection model
  (:class:`~repro.simulation.faults.IndependentErrorModel` /
  :class:`~repro.simulation.faults.BurstErrorModel`), batch-decoded and
  CRC-checked.  Slower by orders of magnitude, but the ground truth the
  probabilistic mode is tested against
  (``tests/netsim/test_engine.py``).

Both samplers draw from the engine's single generator, so a simulation's
outcome depends only on its seed and event order.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

import numpy as np

from ..coding.base import decode_blocks, encode_blocks
from ..coding.crc import CyclicRedundancyCheck
from ..coding.theory import block_error_probability
from ..exceptions import ConfigurationError

__all__ = [
    "TransmissionOutcome",
    "ProbabilisticOutcomeSampler",
    "BitExactOutcomeSampler",
    "packets_for_payload",
]


@dataclass(frozen=True)
class TransmissionOutcome:
    """What happened to the packets of one (re)transmission attempt."""

    packets: int
    failed_detected: int
    delivered_with_errors: int
    residual_bit_errors: int

    @property
    def delivered(self) -> int:
        """Packets handed to the destination (clean or with escaped errors)."""
        return self.packets - self.failed_detected


def _frame_geometry(code, packet_bits: int, crc_width: int) -> int:
    """ECC blocks needed to carry one packet plus its CRC (zero padded)."""
    if packet_bits < 1:
        raise ConfigurationError("packet size must be at least one bit")
    return -(-(packet_bits + crc_width) // code.k)


class ProbabilisticOutcomeSampler:
    """Sample packet outcomes from analytic per-block failure probabilities.

    Parameters
    ----------
    code:
        The configured coding scheme (``n``, ``k``, ``correctable_errors``).
    raw_ber:
        Raw channel bit error probability at the link's operating point (or
        the fault model's long-run average when a burst model is active).
    packet_bits:
        Payload bits per packet.
    crc_width:
        CRC bits appended per packet; ``0`` disables detection entirely
        (every failed packet is delivered carrying residual errors).
    rng:
        The engine's generator; all draws consume this single stream.

    Residual *bit* counts are thinned to the payload fraction of the frame
    (errors landing in the CRC slot or zero padding do not corrupt
    payload), matching the bit-exact sampler's payload-column comparison.
    The packet-level ``delivered_with_errors`` flag stays frame-wide: any
    failed block marks the packet, payload-touching or not.
    """

    def __init__(
        self,
        code,
        raw_ber: float,
        *,
        packet_bits: int,
        crc_width: int = 0,
        rng: np.random.Generator,
    ):
        if not 0.0 <= raw_ber <= 1.0:
            raise ConfigurationError("raw BER must lie in [0, 1]")
        self.code = code
        self.raw_ber = float(raw_ber)
        self.packet_bits = int(packet_bits)
        self.crc_width = int(crc_width)
        self.blocks_per_packet = _frame_geometry(code, packet_bits, self.crc_width)
        self._rng = rng

        t = int(getattr(code, "correctable_errors", 0))
        n, k = int(code.n), int(code.k)
        self.block_failure_probability = block_error_probability(self.raw_ber, n, t)
        #: Probability a failed packet passes the CRC anyway (random-error
        #: approximation: a uniformly random remainder matches with 2^-w).
        self.undetected_probability = 2.0 ** (-self.crc_width) if self.crc_width else 1.0
        # Conditional mean residual message-bit errors per *failed* block.
        # For t >= 1 the dominant failure event (t+1 channel errors) leaves a
        # weight-(2t+1) codeword error, of which k/n lands in message bits;
        # for t = 0 it is the mean raw error count conditioned on >= 1.
        if t >= 1:
            mean = (2 * t + 1) * k / n
        elif self.block_failure_probability > 0.0:
            mean = n * self.raw_ber / self.block_failure_probability * (k / n)
        else:
            mean = 1.0
        mean = min(float(k), max(1.0, mean))
        #: Per-bit rate of the 1 + Binomial(k-1, r) residual draw whose mean
        #: matches the conditional expectation above.
        self._residual_rate = (mean - 1.0) / (k - 1) if k > 1 else 0.0
        #: Fraction of the packet's frame occupied by payload.  Residual
        #: errors land uniformly over the frame's message bits; those in the
        #: CRC slot or the zero padding do not corrupt payload, so the
        #: sampled counts are thinned by this fraction — mirroring the
        #: bit-exact sampler, which only compares the payload columns.
        self._payload_fraction = self.packet_bits / (self.blocks_per_packet * k)

    @property
    def coded_bits_per_packet(self) -> int:
        """Wire bits occupied by one packet (blocks x n)."""
        return self.blocks_per_packet * int(self.code.n)

    def sample(self, num_packets: int) -> TransmissionOutcome:
        """Draw the outcome of transmitting ``num_packets`` packets."""
        if num_packets < 1:
            raise ConfigurationError("an attempt must carry at least one packet")
        rng = self._rng
        shape = (num_packets, self.blocks_per_packet)
        failed_blocks = rng.random(shape) < self.block_failure_probability
        packet_failed = failed_blocks.any(axis=1)
        failed_indices = np.nonzero(packet_failed)[0]
        if failed_indices.size == 0:
            return TransmissionOutcome(num_packets, 0, 0, 0)

        if self.crc_width:
            escaped = rng.random(failed_indices.size) < self.undetected_probability
        else:
            escaped = np.ones(failed_indices.size, dtype=bool)
        delivered_failed = failed_indices[escaped]
        failed_detected = int(failed_indices.size - delivered_failed.size)

        residual = 0
        if delivered_failed.size:
            blocks_in_error = int(failed_blocks[delivered_failed].sum())
            residual = blocks_in_error
            if self._residual_rate > 0.0 and self.code.k > 1:
                residual += int(
                    rng.binomial(self.code.k - 1, self._residual_rate, size=blocks_in_error).sum()
                )
            if self._payload_fraction < 1.0 and residual:
                residual = int(rng.binomial(residual, self._payload_fraction))
        return TransmissionOutcome(
            packets=num_packets,
            failed_detected=failed_detected,
            delivered_with_errors=int(delivered_failed.size),
            residual_bit_errors=int(residual),
        )


class BitExactOutcomeSampler:
    """Round-trip real codewords: encode, corrupt, decode, CRC-check.

    The fault model's ``apply`` corrupts the whole attempt's ``(B, n)``
    block matrix in row-major (transmission) order, so burst models span
    adjacent blocks exactly like on the serialised wire.
    """

    def __init__(
        self,
        code,
        error_model,
        *,
        packet_bits: int,
        crc: CyclicRedundancyCheck | None = None,
        rng: np.random.Generator,
    ):
        self.code = code
        self.error_model = error_model
        self.packet_bits = int(packet_bits)
        self.crc = crc
        self.crc_width = crc.width if crc is not None else 0
        self.blocks_per_packet = _frame_geometry(code, packet_bits, self.crc_width)
        self._rng = rng

    @property
    def coded_bits_per_packet(self) -> int:
        """Wire bits occupied by one packet (blocks x n)."""
        return self.blocks_per_packet * int(self.code.n)

    def sample(self, num_packets: int) -> TransmissionOutcome:
        """Transmit ``num_packets`` fresh random packets end to end."""
        if num_packets < 1:
            raise ConfigurationError("an attempt must carry at least one packet")
        rng = self._rng
        k = int(self.code.k)
        payload = rng.integers(0, 2, size=(num_packets, self.packet_bits), dtype=np.uint8)
        if self.crc is not None:
            protected = np.empty(
                (num_packets, self.packet_bits + self.crc_width), dtype=np.uint8
            )
            for index in range(num_packets):
                protected[index] = self.crc.append(payload[index])
        else:
            protected = payload

        frame_bits = self.blocks_per_packet * k
        frame = np.zeros((num_packets, frame_bits), dtype=np.uint8)
        frame[:, : protected.shape[1]] = protected
        encoded = encode_blocks(self.code, frame.reshape(-1, k))
        corrupted = self.error_model.apply(encoded)
        decoded = decode_blocks(self.code, corrupted).message_bits
        received = decoded.reshape(num_packets, frame_bits)

        payload_errors = np.count_nonzero(
            received[:, : self.packet_bits] != payload, axis=1
        )
        if self.crc is not None:
            ok = np.fromiter(
                (
                    self.crc.verify(received[index, : self.packet_bits + self.crc_width])
                    for index in range(num_packets)
                ),
                dtype=bool,
                count=num_packets,
            )
        else:
            ok = np.ones(num_packets, dtype=bool)
        failed_detected = int(np.count_nonzero(~ok))
        delivered_with_errors = int(np.count_nonzero(ok & (payload_errors > 0)))
        residual = int(payload_errors[ok].sum())
        return TransmissionOutcome(
            packets=num_packets,
            failed_detected=failed_detected,
            delivered_with_errors=delivered_with_errors,
            residual_bit_errors=residual,
        )


def packets_for_payload(payload_bits: int, packet_bits: int) -> int:
    """Packets needed to carry a payload (last one zero padded)."""
    if payload_bits < 1:
        raise ConfigurationError("payload must contain at least one bit")
    if packet_bits < 1:
        raise ConfigurationError("packet size must be at least one bit")
    return math.ceil(payload_bits / packet_bits)
