"""Placement of ONIs on the optical layer and waveguide distances.

The paper evaluates a serpentine/ring-style layout where the worst-case
writer-to-reader distance is 6 cm.  The topology object places the ONIs
uniformly along a waveguide loop of that worst-case length and answers
distance queries; alternative spacings can be supplied for floorplan
studies.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence, Tuple

from ..config import DEFAULT_CONFIG, PaperConfig
from ..exceptions import ConfigurationError

__all__ = ["RingTopology"]


@dataclass(frozen=True)
class RingTopology:
    """Unidirectional ring of ONIs along a shared waveguide.

    Parameters
    ----------
    num_onis:
        Number of optical network interfaces on the ring.
    loop_length_m:
        Physical length of the full waveguide loop; the worst-case
        writer-to-reader path (one hop short of the full loop) matches the
        paper's 6 cm when the default is used.
    positions_m:
        Optional explicit ONI positions along the loop (monotonically
        increasing, all within the loop length).  Uniform placement is used
        when omitted.
    """

    num_onis: int = 12
    loop_length_m: float = 0.0654545454545
    positions_m: Tuple[float, ...] | None = None

    def __post_init__(self) -> None:
        if self.num_onis < 2:
            raise ConfigurationError("a ring needs at least two ONIs")
        if self.loop_length_m <= 0:
            raise ConfigurationError("loop length must be positive")
        if self.positions_m is not None:
            if len(self.positions_m) != self.num_onis:
                raise ConfigurationError("positions must list one entry per ONI")
            if any(p < 0 or p >= self.loop_length_m for p in self.positions_m):
                raise ConfigurationError("positions must lie within the loop length")
            if any(b <= a for a, b in zip(self.positions_m, self.positions_m[1:])):
                raise ConfigurationError("positions must be strictly increasing")

    @classmethod
    def from_config(cls, config: PaperConfig = DEFAULT_CONFIG) -> "RingTopology":
        """Topology whose worst-case writer→reader distance equals the config's.

        With ``N`` uniformly placed ONIs the worst-case downstream path spans
        ``N - 1`` of the ``N`` segments, so the loop is scaled accordingly.
        """
        worst_case = config.waveguide_length_m
        loop = worst_case * config.num_onis / (config.num_onis - 1)
        return cls(num_onis=config.num_onis, loop_length_m=loop)

    # ------------------------------------------------------------------ queries
    def position(self, oni_index: int) -> float:
        """Position of one ONI along the loop, in metres."""
        self._check_index(oni_index)
        if self.positions_m is not None:
            return self.positions_m[oni_index]
        return self.loop_length_m * oni_index / self.num_onis

    def downstream_distance(self, from_oni: int, to_oni: int) -> float:
        """Distance travelled by light from one ONI to another (unidirectional)."""
        self._check_index(from_oni)
        self._check_index(to_oni)
        if from_oni == to_oni:
            return 0.0
        delta = self.position(to_oni) - self.position(from_oni)
        if delta <= 0:
            delta += self.loop_length_m
        return delta

    def worst_case_distance(self, reader: int) -> float:
        """Longest writer→reader distance on the channel read by ``reader``."""
        return max(
            self.downstream_distance(writer, reader)
            for writer in range(self.num_onis)
            if writer != reader
        )

    def onis_crossed(self, from_oni: int, to_oni: int) -> Sequence[int]:
        """ONIs the signal passes strictly between a writer and a reader."""
        self._check_index(from_oni)
        self._check_index(to_oni)
        crossed = []
        current = (from_oni + 1) % self.num_onis
        while current != to_oni:
            crossed.append(current)
            current = (current + 1) % self.num_onis
        return crossed

    def _check_index(self, oni_index: int) -> None:
        if not 0 <= oni_index < self.num_onis:
            raise ConfigurationError(
                f"ONI index {oni_index} outside [0, {self.num_onis - 1}]"
            )
