"""Fixture suite for the RPR1xx determinism rules.

Every rule gets at least one positive case (the invariant violation is
flagged) and one negative case (the blessed idiom stays silent), so a
rule that stops firing — or starts over-firing — fails here before it
rots the codebase.
"""

from __future__ import annotations

import textwrap

from repro.analysis import lint_source

#: A path inside the configured deterministic subtrees (RPR103/RPR104).
SIM_PATH = "repro/netsim/fixture.py"
#: A path outside them (scoped rules must stay silent here).
TOOL_PATH = "repro/obs/fixture.py"


def codes(source: str, path: str = SIM_PATH) -> list:
    return [finding.code for finding in lint_source(textwrap.dedent(source), path=path)]


class TestGlobalStdlibRandom:
    def test_module_level_call_is_flagged(self):
        assert codes("import random\nx = random.random()\n") == ["RPR101"]

    def test_seed_and_shuffle_are_flagged(self):
        source = """
        import random
        random.seed(7)
        random.shuffle([1, 2])
        """
        assert codes(source) == ["RPR101", "RPR101"]

    def test_from_import_of_global_fn_is_flagged(self):
        assert codes("from random import randint\n") == ["RPR101"]

    def test_unseeded_random_instance_is_flagged(self):
        assert codes("import random\nr = random.Random()\n") == ["RPR101"]

    def test_seeded_random_instance_is_fine(self):
        assert codes("import random\nr = random.Random('job:3')\n") == []

    def test_aliased_import_is_still_caught(self):
        assert codes("import random as rnd\nx = rnd.uniform(0, 1)\n") == ["RPR101"]

    def test_local_object_named_random_is_not_confused(self):
        # ``rng.random()`` is a Generator method, not the random module.
        assert codes("def f(rng):\n    return rng.random()\n") == []


class TestNumpyRngDiscipline:
    def test_legacy_global_api_is_flagged(self):
        source = """
        import numpy as np
        np.random.seed(0)
        x = np.random.rand(4)
        """
        assert codes(source) == ["RPR102", "RPR102"]

    def test_randomstate_is_flagged_even_seeded(self):
        assert codes("import numpy as np\nr = np.random.RandomState(3)\n") == ["RPR102"]

    def test_unseeded_default_rng_outside_whitelist_is_flagged(self):
        source = """
        import numpy as np
        def draw():
            return np.random.default_rng().random()
        """
        assert codes(source) == ["RPR102"]

    def test_unseeded_default_rng_in_init_is_fine(self):
        source = """
        import numpy as np
        class Channel:
            def __init__(self, rng=None):
                self._rng = rng if rng is not None else np.random.default_rng()
        """
        assert codes(source) == []

    def test_unseeded_default_rng_in_resolve_rng_is_fine(self):
        source = """
        import numpy as np
        def resolve_rng(rng=None, seed=None):
            if rng is not None:
                return rng
            if seed is not None:
                return np.random.default_rng(seed)
            return np.random.default_rng()
        """
        assert codes(source) == []

    def test_seeded_default_rng_is_fine(self):
        assert codes("import numpy as np\nr = np.random.default_rng(42)\n") == []

    def test_from_import_form_is_resolved(self):
        source = """
        from numpy.random import default_rng
        def f():
            return default_rng()
        """
        assert codes(source) == ["RPR102"]


class TestWallClock:
    def test_time_time_on_sim_path_is_flagged(self):
        assert codes("import time\nt = time.time()\n") == ["RPR103"]

    def test_datetime_now_on_sim_path_is_flagged(self):
        source = """
        from datetime import datetime
        stamp = datetime.now()
        """
        assert codes(source) == ["RPR103"]

    def test_monotonic_and_perf_counter_are_fine(self):
        source = """
        import time
        a = time.monotonic()
        b = time.perf_counter()
        """
        assert codes(source) == []

    def test_wall_clock_outside_sim_paths_is_fine(self):
        assert codes("import time\nt = time.time()\n", path=TOOL_PATH) == []


class TestUnorderedIteration:
    def test_for_over_set_literal_is_flagged(self):
        assert codes("for x in {1, 2, 3}:\n    pass\n") == ["RPR104"]

    def test_for_over_set_call_is_flagged(self):
        assert codes("for x in set([3, 1]):\n    pass\n") == ["RPR104"]

    def test_comprehension_over_set_is_flagged(self):
        assert codes("grid = [x for x in {1, 2}]\n") == ["RPR104"]

    def test_sorted_set_is_fine(self):
        assert codes("for x in sorted({3, 1}):\n    pass\n") == []

    def test_popitem_is_flagged(self):
        assert codes("def f(d):\n    return d.popitem()\n") == ["RPR104"]

    def test_outside_sim_paths_is_fine(self):
        assert codes("for x in {1, 2}:\n    pass\n", path=TOOL_PATH) == []
