"""Bit-level simulation of one optical link at a solved operating point.

The analytic chain (code → raw BER → SNR → laser power) predicts that a link
designed by :class:`~repro.link.design.OpticalLinkDesigner` meets its target
post-decoding BER.  This simulator closes the loop empirically: it takes a
design point, rebuilds the physical OOK/AWGN channel at the corresponding
received power and crosstalk, pushes random payloads through
encode → transmit → decode, and measures the residual bit error rate.  The
validation example and the integration tests check the measured raw BER
against Eq. 3 and the corrected BER against Eq. 2.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..channel.awgn import OOKAWGNChannel
from ..config import DEFAULT_CONFIG, PaperConfig
from ..exceptions import ConfigurationError
from ..link.design import LinkDesignPoint

__all__ = ["LinkSimulationResult", "OpticalLinkSimulator"]


@dataclass(frozen=True)
class LinkSimulationResult:
    """Measured error statistics of a simulated link."""

    code_name: str
    target_ber: float
    analytic_raw_ber: float
    measured_raw_ber: float
    measured_post_decoding_ber: float
    bits_simulated: int
    raw_bit_errors: int
    residual_bit_errors: int
    blocks_with_residual_errors: int
    blocks_simulated: int

    @property
    def block_error_rate(self) -> float:
        """Fraction of decoded blocks still containing at least one error."""
        if self.blocks_simulated == 0:
            return 0.0
        return self.blocks_with_residual_errors / self.blocks_simulated


class OpticalLinkSimulator:
    """Monte-Carlo simulation of a coded optical link."""

    def __init__(
        self,
        code,
        design_point: LinkDesignPoint,
        *,
        config: PaperConfig = DEFAULT_CONFIG,
        rng: np.random.Generator | None = None,
    ):
        if design_point.signal_power_w <= 0:
            raise ConfigurationError("the design point must carry a positive signal power")
        self._code = code
        self._point = design_point
        self._config = config
        self._rng = rng if rng is not None else np.random.default_rng()
        self._channel = OOKAWGNChannel(
            design_point.signal_power_w,
            crosstalk_power_w=design_point.crosstalk_power_w,
            extinction_ratio_db=config.extinction_ratio_db,
            responsivity_a_per_w=config.photodetector_responsivity_a_per_w,
            dark_current_a=config.dark_current_a,
            rng=self._rng,
        )

    @property
    def channel(self) -> OOKAWGNChannel:
        """The physical channel model built from the design point."""
        return self._channel

    @property
    def analytic_raw_ber(self) -> float:
        """Raw BER the analytic model expects at this operating point."""
        return self._channel.analytic_ber

    def run(self, num_blocks: int = 2000) -> LinkSimulationResult:
        """Simulate ``num_blocks`` codewords and collect the error statistics."""
        if num_blocks < 1:
            raise ConfigurationError("at least one block must be simulated")
        k = self._code.k
        raw_errors = 0
        residual_errors = 0
        bad_blocks = 0
        raw_bits = 0
        for _ in range(num_blocks):
            message = self._rng.integers(0, 2, size=k, dtype=np.uint8)
            codeword = self._code.encode_block(message)
            received = self._channel.transmit(codeword)
            raw_errors += int(np.count_nonzero(received != codeword))
            raw_bits += int(codeword.size)
            decoded = self._code.decode_block(received).message_bits
            errors = int(np.count_nonzero(decoded != message))
            residual_errors += errors
            if errors:
                bad_blocks += 1
        payload_bits = num_blocks * k
        return LinkSimulationResult(
            code_name=getattr(self._code, "name", type(self._code).__name__),
            target_ber=self._point.target_ber,
            analytic_raw_ber=self.analytic_raw_ber,
            measured_raw_ber=raw_errors / raw_bits,
            measured_post_decoding_ber=residual_errors / payload_bits,
            bits_simulated=payload_bits,
            raw_bit_errors=raw_errors,
            residual_bit_errors=residual_errors,
            blocks_with_residual_errors=bad_blocks,
            blocks_simulated=num_blocks,
        )
