"""Stdlib-logging plumbing: one handler, shard-index tagging.

All operational messages of the experiment stack flow through module
loggers under the ``"repro"`` namespace (``repro.experiments.orchestrator``
and friends).  :func:`setup_logging` attaches one stderr handler to that
root — report text keeps going to stdout untouched — and
:func:`shard_logging_context` tags every record emitted while a shard
executes with its shard index, so interleaved worker logs stay
attributable.
"""

from __future__ import annotations

import contextlib
import contextvars
import logging
import sys
from typing import TextIO

__all__ = ["setup_logging", "shard_logging_context"]

#: Shard index of the currently executing shard, or ``None`` outside one.
#: A ``ContextVar`` so the tag follows execution, not a thread or process.
_SHARD_INDEX: contextvars.ContextVar["int | None"] = contextvars.ContextVar(
    "repro_shard_index", default=None
)

_HANDLER_FLAG = "_repro_obs_handler"


class _ShardTagFilter(logging.Filter):
    """Injects ``record.shard_tag`` (``" [shard N]"`` or ``""``)."""

    def filter(self, record: logging.LogRecord) -> bool:
        index = _SHARD_INDEX.get()
        record.shard_tag = f" [shard {index}]" if index is not None else ""
        return True


class _CurrentStderr:
    """File-like proxy resolving ``sys.stderr`` at write time.

    ``logging.StreamHandler`` captures its stream once at construction;
    binding it to this proxy instead keeps the handler pointed at whatever
    ``sys.stderr`` currently is, so redirections (and test capture) applied
    after :func:`setup_logging` still receive the log lines.
    """

    def write(self, text: str) -> int:
        return sys.stderr.write(text)

    def flush(self) -> None:
        sys.stderr.flush()


def setup_logging(level: str = "warning", stream: TextIO | None = None) -> logging.Logger:
    """Configure the ``repro`` logger tree with one tagged stderr handler.

    Idempotent: calling it again only adjusts the level (so tests and
    repeated CLI invocations never stack handlers).
    """
    logger = logging.getLogger("repro")
    numeric = getattr(logging, level.upper(), None)
    if not isinstance(numeric, int):
        raise ValueError(f"unknown log level {level!r}")
    logger.setLevel(numeric)
    for handler in logger.handlers:
        if getattr(handler, _HANDLER_FLAG, False):
            handler.setLevel(numeric)
            return logger
    handler = logging.StreamHandler(stream if stream is not None else _CurrentStderr())
    handler.setLevel(numeric)
    handler.addFilter(_ShardTagFilter())
    handler.setFormatter(
        logging.Formatter("%(levelname)s %(name)s%(shard_tag)s: %(message)s")
    )
    setattr(handler, _HANDLER_FLAG, True)
    logger.addHandler(handler)
    # Operational logs are the handler's job; never bubble to the root
    # logger where basicConfig'd applications would double-print them.
    logger.propagate = False
    return logger


@contextlib.contextmanager
def shard_logging_context(index: int):
    """Tag every log record emitted in this scope with ``[shard index]``."""
    token = _SHARD_INDEX.set(int(index))
    try:
        yield
    finally:
        _SHARD_INDEX.reset(token)
