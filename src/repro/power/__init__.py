"""Power and energy accounting (paper Section IV-E and Section V-C).

* :mod:`repro.power.channel` — per-wavelength channel power
  ``P_channel = P_ENC+DEC + P_MR + P_laser`` and its breakdown (Figure 6a).
* :mod:`repro.power.energy` — communication time and energy-per-bit
  accounting (Figure 6b and the pJ/bit numbers of Section V-C).
* :mod:`repro.power.interconnect` — aggregation to whole waveguides,
  channels and the full interconnect (the "22 W saved" headline).
"""

from .channel import ChannelPowerBreakdown, channel_power_breakdown
from .energy import EnergyMetrics, communication_time, energy_metrics
from .interconnect import InterconnectPowerSummary, interconnect_power_summary

__all__ = [
    "ChannelPowerBreakdown",
    "channel_power_breakdown",
    "EnergyMetrics",
    "communication_time",
    "energy_metrics",
    "InterconnectPowerSummary",
    "interconnect_power_summary",
]
