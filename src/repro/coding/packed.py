"""Packed-word GF(2) substrate: bit vectors as ``uint64`` word matrices.

Every hot path of the library used to shuttle one-byte-per-bit ``(B, n)``
``uint8`` matrices between the coding, channel and simulation layers, which
caps throughput at the memory bandwidth of 8x-inflated data.  This module
defines the packed twin of that representation and the primitives the rest
of the stack builds on:

* a block of ``n`` bits is stored in ``W = ceil(n / 64)`` little-endian
  ``uint64`` words; bit ``i`` of the block lives in byte ``i // 8`` of the
  row's byte image, MSB first within the byte — exactly the layout
  :func:`numpy.packbits` produces, so packing is one ``packbits`` call and
  the byte image of a packed matrix (``.view(np.uint8)``) is directly
  indexable for the 256-entry bit-sliced lookup tables the coders use;
* bits past ``n`` (the padding of the last word) are always zero.  Every
  producer in this module maintains that invariant, which is what makes
  :func:`popcount_rows` a correct Hamming-weight/distance primitive;
* GF(2) arithmetic on packed rows is plain integer bitwise ops: addition is
  ``^``, masking is ``&``, and error injection is a packed XOR mask.

Because packing commutes with XOR, the packed pipeline is *bit-exact* with
its unpacked twin: ``pack_bits(a ^ b) == pack_bits(a) ^ pack_bits(b)``, so
codewords, channel corruptions and syndrome corrections can stay packed end
to end and unpack only at the API boundary (if ever).
"""

from __future__ import annotations

import numpy as np

from ..exceptions import ConfigurationError

__all__ = [
    "WORD_BITS",
    "words_per_block",
    "pack_bits",
    "unpack_bits",
    "packed_byte_view",
    "require_packed_blocks",
    "popcount",
    "popcount_rows",
    "prefix_mask",
    "range_mask",
    "bit_weights",
    "byte_lookup_tables",
    "fold_byte_tables",
]

#: Bits per storage word of the packed substrate.
WORD_BITS = 64


def words_per_block(num_bits: int) -> int:
    """Number of ``uint64`` words needed to hold ``num_bits`` bits."""
    if num_bits < 0:
        raise ConfigurationError("number of bits cannot be negative")
    return -(-num_bits // WORD_BITS)


def pack_bits(bits) -> np.ndarray:
    """Pack a ``(B, n)`` 0/1 matrix into a ``(B, ceil(n/64))`` uint64 matrix.

    Accepts ``uint8``/bool bit matrices; the padding bits of the last word
    are zero.  A 1-D vector is treated as a single block (packed to shape
    ``(W,)``).
    """
    matrix = np.asarray(bits)
    squeeze = matrix.ndim == 1
    if squeeze:
        matrix = matrix[np.newaxis, :]
    if matrix.ndim != 2:
        raise ConfigurationError(f"pack_bits expects a (B, n) bit matrix, got shape {matrix.shape}")
    num_blocks, num_bits = matrix.shape
    num_words = words_per_block(num_bits)
    byte_image = np.packbits(matrix.astype(np.uint8, copy=False), axis=1)
    if byte_image.shape[1] != num_words * 8:
        padded = np.zeros((num_blocks, num_words * 8), dtype=np.uint8)
        padded[:, : byte_image.shape[1]] = byte_image
        byte_image = padded
    words = byte_image.view(np.uint64)
    return words[0] if squeeze else words


def unpack_bits(words, num_bits: int) -> np.ndarray:
    """Unpack a ``(B, W)`` uint64 matrix back into a ``(B, num_bits)`` uint8 matrix."""
    matrix = np.ascontiguousarray(words)
    squeeze = matrix.ndim == 1
    if squeeze:
        matrix = matrix[np.newaxis, :]
    if matrix.ndim != 2 or matrix.shape[1] != words_per_block(num_bits):
        raise ConfigurationError(
            f"unpack_bits expected a (B, {words_per_block(num_bits)}) word matrix "
            f"for {num_bits} bits, got shape {np.asarray(words).shape}"
        )
    bits = np.unpackbits(matrix.view(np.uint8), axis=1, count=num_bits)
    return bits[0] if squeeze else bits


def packed_byte_view(words: np.ndarray) -> np.ndarray:
    """The ``(B, W * 8)`` byte image of a packed matrix (no copy when contiguous).

    Byte ``i`` of a row holds bits ``8 i .. 8 i + 7`` of the block MSB-first,
    i.e. exactly what ``np.packbits`` would produce for those bits — which is
    what lets the 256-entry bit-sliced encode/syndrome tables gather straight
    from packed storage without ever materialising unpacked bits.
    """
    return np.ascontiguousarray(words).view(np.uint8)


#: ``np.bitwise_count`` is the native popcount ufunc of NumPy >= 2.0; older
#: releases fall back to a 256-entry per-byte popcount table over the byte
#: image, which is the same values a few times slower.
_HAS_BITWISE_COUNT = hasattr(np, "bitwise_count")
_BYTE_POPCOUNT = np.unpackbits(np.arange(256, dtype=np.uint8)[:, np.newaxis], axis=1).sum(
    axis=1, dtype=np.uint8
)


def popcount(words) -> int:
    """Total number of set bits in a packed array."""
    matrix = np.asarray(words)
    if _HAS_BITWISE_COUNT:
        return int(np.bitwise_count(matrix).sum())
    return int(_BYTE_POPCOUNT[np.ascontiguousarray(matrix).reshape(-1).view(np.uint8)].sum())


def popcount_rows(words: np.ndarray) -> np.ndarray:
    """Per-row set-bit counts of a ``(B, W)`` packed matrix (``(B,)`` int64)."""
    if _HAS_BITWISE_COUNT:
        return np.bitwise_count(words).sum(axis=1, dtype=np.int64)
    return _BYTE_POPCOUNT[packed_byte_view(words)].sum(axis=1, dtype=np.int64)


def prefix_mask(num_bits: int, prefix_bits: int) -> np.ndarray:
    """Packed ``(W,)`` mask selecting the first ``prefix_bits`` of an ``num_bits``-bit block.

    ANDing a packed codeword row with ``prefix_mask(n, k)`` isolates the
    systematic message bits, so residual message errors are one XOR + AND +
    popcount away.
    """
    return range_mask(num_bits, 0, prefix_bits)


def range_mask(num_bits: int, start: int, stop: int) -> np.ndarray:
    """Packed ``(W,)`` mask selecting bit positions ``start <= i < stop``."""
    if not 0 <= start <= stop <= num_bits:
        raise ConfigurationError(
            f"invalid bit range [{start}, {stop}) for a {num_bits}-bit block"
        )
    bits = np.zeros(num_bits, dtype=np.uint8)
    bits[start:stop] = 1
    return pack_bits(bits)


def require_packed_blocks(words, n: int, *, what: str = "block") -> np.ndarray:
    """Validate a ``(B, ceil(n/64))`` uint64 packed matrix (shape and dtype)."""
    matrix = np.asarray(words)
    expected = words_per_block(n)
    if matrix.ndim != 2 or matrix.shape[1] != expected or matrix.dtype != np.uint64:
        raise ConfigurationError(
            f"expected a packed (B, {expected}) uint64 {what} matrix for n={n}, "
            f"got shape {matrix.shape} dtype {matrix.dtype}"
        )
    return matrix


def bit_weights() -> np.ndarray:
    """``(64,)`` uint64 words with word bit ``o`` set, in the substrate's layout.

    Built through :func:`pack_bits` itself, so the in-word bit placement is
    derived from (not assumed about) the byte-image convention — correct on
    any host endianness.
    """
    return pack_bits(np.eye(WORD_BITS, dtype=np.uint8)).ravel()


def byte_lookup_tables(contributions: np.ndarray) -> np.ndarray:
    """Bit-sliced XOR tables: ``(num_bits, ...)`` contributions -> ``(ceil(num_bits/8), 256, ...)``.

    The shared builder behind every 256-entry lookup table in the stack
    (packed encode tables, syndrome keys, BCH power sums, batch CRC): entry
    ``[i, v]`` is the XOR of ``contributions[8 i + j]`` over the bits ``j``
    set in byte value ``v`` (MSB first), matching the packed byte image, so
    any GF(2)-linear map of a block batch reduces to
    :func:`fold_byte_tables` over its bytes.
    """
    num_bits = contributions.shape[0]
    num_bytes = -(-num_bits // 8)
    tables = np.zeros((num_bytes, 256) + contributions.shape[1:], dtype=contributions.dtype)
    values = np.arange(256)
    for byte_index in range(num_bytes):
        start = byte_index * 8
        for bit in range(min(8, num_bits - start)):
            selected = ((values >> (7 - bit)) & 1).astype(bool)
            tables[byte_index, selected] ^= contributions[start + bit]
    return tables


def fold_byte_tables(tables: np.ndarray, byte_image: np.ndarray) -> np.ndarray:
    """XOR-fold table gathers over a batch's byte image (one gather per byte).

    Zero-bit inputs (no tables) fold to the identity of XOR — all zeros —
    matching the bit-serial references on empty messages.
    """
    if tables.shape[0] == 0:
        return np.zeros((byte_image.shape[0],) + tables.shape[2:], dtype=tables.dtype)
    out = tables[0][byte_image[:, 0]]
    for index in range(1, tables.shape[0]):
        out = out ^ tables[index][byte_image[:, index]]
    return out
