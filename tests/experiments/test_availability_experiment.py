"""Tests of the ``availability`` experiment: grid, determinism, degradation."""

from __future__ import annotations

import pytest

from repro.exceptions import ConfigurationError
from repro.experiments import availability
from repro.experiments.orchestrator import available_experiments, run_experiment

#: Small but meaningful grid reused by every test in the module.
_OPTIONS = {
    "scenarios": ["none", "mixed"],
    "loads": [0.5],
    "num_requests": 150,
    "seed": 31,
}


@pytest.fixture(scope="module")
def serial_report():
    return run_experiment("availability", options=_OPTIONS)


def test_registered_with_the_orchestrator():
    assert "availability" in available_experiments()


def test_grid_shards_one_per_point():
    shards = availability.sweep_shards(
        options={"scenarios": ["lane-fail", "blackout"], "loads": [0.2, 0.5]}
    )
    assert len(shards) == 2 * 2 * 3
    # Policies of one (scenario, load) pair share the pair's seed streams,
    # so they face literally the same traffic and fault timelines.
    pair_indices = {
        (shard["scenario"], shard["load"]): shard["pair_index"] for shard in shards
    }
    assert len(set(pair_indices.values())) == 4
    for shard in shards:
        assert shard["pair_index"] == pair_indices[(shard["scenario"], shard["load"])]


def test_grid_rejects_unknown_axes():
    with pytest.raises(ConfigurationError):
        availability.sweep_shards(options={"scenarios": ["earthquake"]})
    with pytest.raises(ConfigurationError):
        availability.sweep_shards(options={"policies": ["hope"]})


def test_parallel_report_is_byte_identical(serial_report):
    """Determinism guard: serial vs --jobs 4 must match byte for byte."""
    text, rows = serial_report
    text4, rows4 = run_experiment("availability", jobs=4, options=_OPTIONS)
    assert text == text4
    assert rows == rows4


def test_ladder_degrades_gracefully_under_faults(serial_report):
    """The acceptance criterion: fewer drops and no wasted energy vs static."""
    _, rows = serial_report
    faulted = {row["policy"]: row for row in rows if row["scenario"] == "mixed"}
    static = faulted["static"]
    ladder = faulted["degradation-ladder"]
    # Faults actually happened and were accounted.
    assert static["fault_transitions"] > 0
    assert static["availability"] < 1.0
    # The ladder drops (strictly) fewer packets than blind retransmission
    # and does not retransmit into dead channels.
    assert ladder["packet_drop_rate"] < static["packet_drop_rate"]
    assert ladder["packets_retried"] < static["packets_retried"]
    assert ladder["drop_rate_delta_vs_static_pp"] > 0.0
    # Blind retransmission into dead lanes costs energy the ladder saves.
    assert ladder["total_energy_j"] < static["total_energy_j"]


def test_fault_free_baseline_is_clean(serial_report):
    _, rows = serial_report
    for row in rows:
        if row["scenario"] == "none":
            assert row["availability"] == 1.0
            assert row["packet_drop_rate"] == 0.0
            assert row["fault_transitions"] == 0


def test_payload_carries_trace_and_availability_metrics():
    shards = availability.sweep_shards(options=_OPTIONS)
    ladder_shards = [
        shard
        for shard in shards
        if shard["scenario"] == "mixed" and shard["policy"] == "degradation-ladder"
    ]
    payload = availability.run_sweep_shard(ladder_shards[0])
    for key in (
        "availability",
        "packet_drop_rate",
        "crc_escape_rate",
        "packets_retried",
        "mean_time_to_recover_s",
        "channel_downtime_s",
    ):
        assert key in payload
    trace = payload["trace"]
    assert len(trace) >= availability.TRACE_INTERVALS // 2
    assert all("availability" in bucket for bucket in trace)


def test_run_availability_matches_orchestrated_grid(serial_report):
    text, rows = serial_report
    direct = availability.run_availability(options=_OPTIONS)
    assert direct.render_text() == text
    assert direct.to_rows() == rows
