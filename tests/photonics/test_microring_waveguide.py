"""Tests for the micro-ring and waveguide device models."""

from __future__ import annotations

import numpy as np
import pytest

from repro.photonics.microring import MicroringResonator, MicroringState
from repro.photonics.waveguide import Waveguide
from repro.exceptions import ConfigurationError


class TestMicroringResonator:
    def test_defaults_match_the_paper(self):
        ring = MicroringResonator()
        assert ring.extinction_ratio_db == pytest.approx(6.9)
        assert ring.drive_power_w == pytest.approx(1.36e-3)

    def test_fwhm_from_quality_factor(self):
        ring = MicroringResonator(resonance_wavelength_m=1550e-9, quality_factor=9000)
        assert ring.fwhm_m == pytest.approx(1550e-9 / 9000)

    def test_on_off_transmission_ratio_is_the_extinction_ratio(self):
        ring = MicroringResonator()
        ratio = ring.off_state_transmission / ring.on_state_transmission
        assert 10 * np.log10(ratio) == pytest.approx(6.9, rel=1e-6)

    def test_modulation_extinction_at_signal_wavelength(self):
        ring = MicroringResonator()
        assert ring.modulation_extinction_db() == pytest.approx(6.9, abs=0.3)

    def test_off_state_through_loss_is_small(self):
        ring = MicroringResonator(through_loss_db=0.012)
        assert ring.off_state_transmission == pytest.approx(10 ** (-0.012 / 10))

    def test_through_spectrum_dips_at_resonance(self):
        ring = MicroringResonator()
        wavelengths = np.linspace(1549e-9, 1551e-9, 801)
        spectrum = ring.spectrum(wavelengths, MicroringState.OFF)
        dip_index = int(np.argmin(spectrum))
        assert wavelengths[dip_index] == pytest.approx(ring.resonance_wavelength_m, abs=3e-12)

    def test_on_state_resonance_is_blue_shifted(self):
        ring = MicroringResonator(on_state_shift_m=0.1e-9)
        wavelengths = np.linspace(1549e-9, 1551e-9, 2001)
        on_spectrum = ring.spectrum(wavelengths, MicroringState.ON)
        dip = wavelengths[int(np.argmin(on_spectrum))]
        assert dip < ring.resonance_wavelength_m

    def test_drop_transmission_peaks_at_resonance_and_rolls_off(self):
        ring = MicroringResonator(drop_loss_db=1.6)
        at_resonance = ring.drop_transmission(ring.resonance_wavelength_m)
        adjacent = ring.drop_transmission(ring.resonance_wavelength_m + 0.8e-9)
        assert at_resonance == pytest.approx(10 ** (-1.6 / 10))
        assert adjacent < 0.05 * at_resonance

    def test_far_detuned_through_transmission_approaches_floor(self):
        ring = MicroringResonator()
        far = ring.through_transmission(ring.resonance_wavelength_m + 50 * ring.fwhm_m)
        assert far == pytest.approx(ring.off_state_transmission, rel=1e-2)

    def test_detuned_copy_preserves_parameters(self):
        ring = MicroringResonator(quality_factor=12000, drop_loss_db=2.0)
        copy = ring.detuned_copy(1552e-9)
        assert copy.resonance_wavelength_m == pytest.approx(1552e-9)
        assert copy.quality_factor == ring.quality_factor
        assert copy.drop_loss_db == ring.drop_loss_db

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            MicroringResonator(quality_factor=0)
        with pytest.raises(ConfigurationError):
            MicroringResonator(extinction_ratio_db=0)
        with pytest.raises(ConfigurationError):
            MicroringResonator(through_loss_db=-0.1)


class TestWaveguide:
    def test_paper_propagation_loss(self):
        waveguide = Waveguide(length_m=0.06, propagation_loss_db_per_cm=0.274)
        assert waveguide.propagation_loss_db == pytest.approx(1.644)

    def test_total_loss_includes_bends_and_crossings(self):
        waveguide = Waveguide(
            length_m=0.01,
            propagation_loss_db_per_cm=0.274,
            num_bends=4,
            bend_loss_db=0.005,
            num_crossings=2,
            crossing_loss_db=0.05,
        )
        expected = 0.274 + 4 * 0.005 + 2 * 0.05
        assert waveguide.total_loss_db == pytest.approx(expected)

    def test_transmission_is_consistent_with_loss(self):
        waveguide = Waveguide(length_m=0.06)
        assert waveguide.transmission == pytest.approx(10 ** (-waveguide.total_loss_db / 10))

    def test_partial_loss_scales_linearly(self):
        waveguide = Waveguide(length_m=0.06)
        assert waveguide.partial_loss_db(0.03) == pytest.approx(
            waveguide.propagation_loss_db / 2
        )

    def test_partial_loss_rejects_out_of_range(self):
        waveguide = Waveguide(length_m=0.06)
        with pytest.raises(ConfigurationError):
            waveguide.partial_loss_db(0.07)
        with pytest.raises(ConfigurationError):
            waveguide.partial_loss_db(-0.01)

    def test_zero_length_waveguide_is_lossless(self):
        assert Waveguide(length_m=0.0).transmission == pytest.approx(1.0)

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            Waveguide(length_m=-1.0)
        with pytest.raises(ConfigurationError):
            Waveguide(propagation_loss_db_per_cm=-0.1)
        with pytest.raises(ConfigurationError):
            Waveguide(num_bends=-1)
