"""Experiments ``figure6a`` and ``figure6b``: channel power and Pareto trade-off.

Figure 6a breaks the per-wavelength channel power at BER = 1e-11 into its
three contributions (encoder/decoder interfaces, modulators, lasers) for the
three transmission schemes; the laser dominates (92% without ECC) and the
coded schemes cut the total channel power by ~45-50%.

Figure 6b plots, for BER targets from 1e-6 to 1e-12, the per-wavelength
channel power against the communication-time overhead of each scheme; every
scheme sits on the Pareto front for its own CT column, which is the paper's
argument that the choice should be left to a runtime manager.
"""

from __future__ import annotations

from dataclasses import asdict, dataclass, field
from typing import Dict, List, Sequence

import numpy as np

from ..coding.registry import get_code, paper_code_by_name, paper_code_set
from ..config import DEFAULT_CONFIG, PaperConfig
from ..interfaces.synthesis import synthesize_interfaces
from ..link.design import OpticalLinkDesigner
from ..manager.pareto import ParetoPoint, pareto_front
from ..power.channel import ChannelPowerBreakdown, channel_power_breakdown
from ..power.energy import EnergyMetrics, energy_metrics
from .paperdata import (
    Comparison,
    PAPER_CHANNEL_POWER_PER_WAVEGUIDE_MW,
    PAPER_ENERGY_PER_BIT_PJ,
    PAPER_LASER_SHARE_UNCODED,
)

__all__ = [
    "Figure6aResult",
    "Figure6bResult",
    "run_figure6a",
    "run_figure6b",
    "figure6a_sweep_shards",
    "run_figure6a_sweep_shard",
    "merge_figure6a_sweep",
    "figure6b_sweep_shards",
    "run_figure6b_sweep_shard",
    "merge_figure6b_sweep",
]


@dataclass
class Figure6aResult:
    """Per-wavelength channel power breakdown at one BER target (Figure 6a)."""

    target_ber: float
    breakdowns: Dict[str, ChannelPowerBreakdown]
    energies: Dict[str, EnergyMetrics]
    comparisons: List[Comparison] = field(default_factory=list)

    def total_power_mw(self, code_name: str) -> float:
        """Total per-wavelength channel power of one scheme, in mW."""
        return self.breakdowns[code_name].total_power_mw

    def power_reduction_vs_uncoded(self, code_name: str) -> float:
        """Fractional channel-power reduction of a scheme vs the uncoded one."""
        baseline = self.breakdowns["w/o ECC"].total_power_w
        return 1.0 - self.breakdowns[code_name].total_power_w / baseline

    def render_text(self) -> str:
        """Stacked-bar style text rendering of the breakdown."""
        lines = [
            f"Figure 6a - channel power per wavelength at BER = {self.target_ber:g}",
            f"{'scheme':<12} {'P_enc+dec':>12} {'P_MR':>8} {'P_laser':>9} {'total':>9} {'laser %':>8} {'CT':>6}",
        ]
        for name, b in self.breakdowns.items():
            lines.append(
                f"{name:<12} {b.interface_power_w * 1e3:12.4f} {b.modulator_power_w * 1e3:8.2f} "
                f"{b.laser_power_w * 1e3:9.2f} {b.total_power_mw:9.2f} "
                f"{b.laser_share * 100:8.1f} {b.communication_time:6.2f}"
            )
        lines.append("")
        lines.append(f"{'scheme':<12} {'E/bit (mod-ref)':>16} {'E/bit (IP-ref)':>15}")
        for name, e in self.energies.items():
            lines.append(
                f"{name:<12} {e.energy_per_bit_modulation_pj:13.2f} pJ "
                f"{e.energy_per_bit_ip_pj:12.2f} pJ"
            )
        lines.append("")
        lines.append("Comparison against the paper:")
        lines.extend(c.render() for c in self.comparisons)
        return "\n".join(lines)


@dataclass
class Figure6bResult:
    """Power vs communication-time trade-off over a BER range (Figure 6b)."""

    target_bers: tuple[float, ...]
    points: List[ParetoPoint]
    front: List[ParetoPoint]

    def points_for_ber(self, target_ber: float) -> List[ParetoPoint]:
        """All scheme points at one BER target."""
        return [
            p
            for p in self.points
            if np.isclose(p.target_ber, target_ber, rtol=1e-9, atol=0.0)
        ]

    def front_for_ber(self, target_ber: float) -> List[ParetoPoint]:
        """The Pareto-optimal subset at one BER target."""
        return pareto_front(self.points_for_ber(target_ber))

    def render_text(self) -> str:
        """Text rendering of the trade-off cloud."""
        lines = [
            "Figure 6b - channel power vs communication time",
            f"{'BER':>10} {'scheme':<12} {'CT':>6} {'P_channel mW':>14} {'on front':>9}",
        ]
        front_ids = {id(p) for p in self.front}
        for point in self.points:
            lines.append(
                f"{point.target_ber:10.0e} {point.code_name:<12} {point.communication_time:6.2f} "
                f"{point.channel_power_w * 1e3:14.2f} {'yes' if id(point) in front_ids else 'no':>9}"
            )
        return "\n".join(lines)


def _paper_codes(config: PaperConfig, codes: Sequence | None):
    return list(codes) if codes is not None else paper_code_set(config.ip_bus_width_bits)


def run_figure6a(
    config: PaperConfig = DEFAULT_CONFIG,
    *,
    target_ber: float = 1e-11,
    codes: Sequence | None = None,
) -> Figure6aResult:
    """Compute the Figure 6a power breakdown and energy-per-bit figures."""
    designer = OpticalLinkDesigner(config=config)
    synthesis = synthesize_interfaces(config=config)
    code_list = _paper_codes(config, codes)

    breakdowns: Dict[str, ChannelPowerBreakdown] = {}
    energies: Dict[str, EnergyMetrics] = {}
    for code in code_list:
        breakdown = channel_power_breakdown(
            code, target_ber, config=config, designer=designer, synthesis=synthesis
        )
        breakdowns[code.name] = breakdown
        energies[code.name] = energy_metrics(breakdown, config=config)

    return Figure6aResult(
        target_ber=target_ber,
        breakdowns=breakdowns,
        energies=energies,
        comparisons=_figure6a_comparisons(breakdowns, energies, config),
    )


def _figure6a_comparisons(
    breakdowns: Dict[str, ChannelPowerBreakdown],
    energies: Dict[str, EnergyMetrics],
    config: PaperConfig,
) -> List[Comparison]:
    """Compare a Figure 6a breakdown against the paper's reported values."""
    comparisons: List[Comparison] = []
    if "w/o ECC" in breakdowns:
        comparisons.append(
            Comparison(
                quantity="laser share of channel power [w/o ECC]",
                measured=breakdowns["w/o ECC"].laser_share,
                reference=PAPER_LASER_SHARE_UNCODED,
                unit="",
            )
        )
    for name, reference in PAPER_CHANNEL_POWER_PER_WAVEGUIDE_MW.items():
        if name in breakdowns:
            measured = breakdowns[name].total_power_mw * config.num_wavelengths
            comparisons.append(
                Comparison(
                    quantity=f"channel power per waveguide [{name}]",
                    measured=measured,
                    reference=reference,
                    unit="mW",
                )
            )
    for name, reference in PAPER_ENERGY_PER_BIT_PJ.items():
        if name in energies:
            comparisons.append(
                Comparison(
                    quantity=f"energy per bit (IP-referenced) [{name}]",
                    measured=energies[name].energy_per_bit_ip_pj,
                    reference=reference,
                    unit="pJ",
                )
            )
    return comparisons


def run_figure6b(
    config: PaperConfig = DEFAULT_CONFIG,
    *,
    target_bers: Sequence[float] = (1e-6, 1e-8, 1e-10, 1e-12),
    codes: Sequence | None = None,
) -> Figure6bResult:
    """Compute the Figure 6b power/performance trade-off cloud."""
    designer = OpticalLinkDesigner(config=config)
    synthesis = synthesize_interfaces(config=config)
    code_list = _paper_codes(config, codes)

    points: List[ParetoPoint] = []
    for ber in target_bers:
        for code in code_list:
            breakdown = channel_power_breakdown(
                code, ber, config=config, designer=designer, synthesis=synthesis
            )
            if not breakdown.feasible:
                continue
            points.append(
                ParetoPoint(
                    code_name=code.name,
                    target_ber=float(ber),
                    communication_time=breakdown.communication_time,
                    channel_power_w=breakdown.total_power_w,
                )
            )
    return Figure6bResult(
        target_bers=tuple(target_bers), points=points, front=pareto_front(points)
    )


# ------------------------------------------------------------------ grid API
def figure6a_sweep_shards(
    config: PaperConfig = DEFAULT_CONFIG, options: dict | None = None
) -> list[dict]:
    """Grid descriptor for Figure 6a: one shard per coding scheme."""
    options = options or {}
    code_names = options.get(
        "codes", [code.name for code in paper_code_set(config.ip_bus_width_bits)]
    )
    target_ber = float(options.get("target_ber", 1e-11))
    return [{"code": name, "target_ber": target_ber} for name in code_names]


def run_figure6a_sweep_shard(params: dict, config: PaperConfig = DEFAULT_CONFIG) -> dict:
    """Worker: power breakdown + energy metrics of one scheme; JSON payload."""
    designer = OpticalLinkDesigner(config=config)
    synthesis = synthesize_interfaces(config=config)
    code = paper_code_by_name(params["code"], config.ip_bus_width_bits)
    breakdown = channel_power_breakdown(
        code, params["target_ber"], config=config, designer=designer, synthesis=synthesis
    )
    return {
        "code": params["code"],
        "breakdown": asdict(breakdown),
        "energy": asdict(energy_metrics(breakdown, config=config)),
    }


def merge_figure6a_sweep(
    payloads: Sequence[dict],
    config: PaperConfig = DEFAULT_CONFIG,
    options: dict | None = None,
) -> tuple[str, list[dict]]:
    """Assemble Figure 6a shard payloads into the (text, rows) pair."""
    options = options or {}
    breakdowns = {p["code"]: ChannelPowerBreakdown(**p["breakdown"]) for p in payloads}
    energies = {p["code"]: EnergyMetrics(**p["energy"]) for p in payloads}
    result = Figure6aResult(
        target_ber=float(options.get("target_ber", 1e-11)),
        breakdowns=breakdowns,
        energies=energies,
        comparisons=_figure6a_comparisons(breakdowns, energies, config),
    )
    rows = [breakdown.as_dict() for breakdown in result.breakdowns.values()]
    return result.render_text(), rows


def figure6b_sweep_shards(
    config: PaperConfig = DEFAULT_CONFIG, options: dict | None = None
) -> list[dict]:
    """Grid descriptor for Figure 6b: one shard per target BER."""
    options = options or {}
    target_bers = [float(ber) for ber in options.get("target_bers", (1e-6, 1e-8, 1e-10, 1e-12))]
    code_names = options.get(
        "codes", [code.name for code in paper_code_set(config.ip_bus_width_bits)]
    )
    return [{"target_ber": ber, "codes": code_names} for ber in target_bers]


def run_figure6b_sweep_shard(params: dict, config: PaperConfig = DEFAULT_CONFIG) -> dict:
    """Worker: the trade-off points of every scheme at one BER; JSON payload."""
    designer = OpticalLinkDesigner(config=config)
    synthesis = synthesize_interfaces(config=config)
    # Resolve the whole shard's codes in one pass rather than rebuilding the
    # paper set per name inside the loop.
    paper_set = {code.name: code for code in paper_code_set(config.ip_bus_width_bits)}
    points = []
    for name in params["codes"]:
        breakdown = channel_power_breakdown(
            paper_set[name] if name in paper_set else get_code(name),
            params["target_ber"],
            config=config,
            designer=designer,
            synthesis=synthesis,
        )
        if not breakdown.feasible:
            continue
        points.append(
            asdict(
                ParetoPoint(
                    code_name=name,
                    target_ber=float(params["target_ber"]),
                    communication_time=breakdown.communication_time,
                    channel_power_w=breakdown.total_power_w,
                )
            )
        )
    return {"target_ber": params["target_ber"], "points": points}


def merge_figure6b_sweep(
    payloads: Sequence[dict],
    config: PaperConfig = DEFAULT_CONFIG,
    options: dict | None = None,
) -> tuple[str, list[dict]]:
    """Assemble Figure 6b shard payloads into the (text, rows) pair."""
    points = [
        ParetoPoint(**point) for payload in payloads for point in payload["points"]
    ]
    result = Figure6bResult(
        target_bers=tuple(payload["target_ber"] for payload in payloads),
        points=points,
        front=pareto_front(points),
    )
    rows = [
        {
            "code": p.code_name,
            "target_ber": p.target_ber,
            "communication_time": p.communication_time,
            "channel_power_mw": p.channel_power_w * 1e3,
        }
        for p in result.points
    ]
    return result.render_text(), rows
