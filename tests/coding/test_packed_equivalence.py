"""Packed/unpacked bit-exact equivalence of the uint64 substrate.

The packed pipeline (``encode_batch_packed`` / packed channel masks /
packed fault masks / ``decode_batch_packed``) must reproduce the unpacked
batch pipeline bit-exactly: for every registry code, crossed with both
stochastic channels and both fault-injection models under a fixed seed,
the decoded ``message_bits`` and the ``corrected`` / ``failure`` flags must
be identical.  The batch Berlekamp–Massey + Chien decoder is additionally
pinned against the scalar per-block reference at raw BERs high enough to
exercise beyond-``t`` failure patterns, and the table-driven batch CRC is
pinned against the bit-serial reference.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.channel.awgn import OOKAWGNChannel
from repro.channel.bsc import BinarySymmetricChannel
from repro.coding.base import decode_blocks_packed, encode_blocks, encode_blocks_packed
from repro.coding.bch import BCHCode
from repro.coding.crc import CyclicRedundancyCheck
from repro.coding.packed import (
    pack_bits,
    popcount,
    popcount_rows,
    prefix_mask,
    range_mask,
    unpack_bits,
    words_per_block,
)
from repro.coding.registry import available_codes, get_code
from repro.simulation.faults import BurstErrorModel, IndependentErrorModel


def _seed(name: str) -> int:
    return sum(name.encode()) * 6011


def _corrupted_batch(code, rng, num_blocks=96, mean_errors=1.6):
    messages = rng.integers(0, 2, size=(num_blocks, code.k), dtype=np.uint8)
    codewords = encode_blocks(code, messages)
    flips = (rng.random((num_blocks, code.n)) < mean_errors / code.n).astype(np.uint8)
    return messages, codewords, codewords ^ flips


# --------------------------------------------------------------------- substrate
class TestPackedSubstrate:
    @pytest.mark.parametrize("num_bits", [1, 7, 8, 63, 64, 65, 71, 128, 130])
    def test_pack_unpack_round_trip(self, num_bits):
        rng = np.random.default_rng(num_bits)
        bits = rng.integers(0, 2, size=(17, num_bits), dtype=np.uint8)
        words = pack_bits(bits)
        assert words.shape == (17, words_per_block(num_bits))
        assert words.dtype == np.uint64
        assert np.array_equal(unpack_bits(words, num_bits), bits)

    @pytest.mark.parametrize("num_bits", [7, 64, 71, 130])
    def test_padding_bits_are_zero(self, num_bits):
        words = pack_bits(np.ones((3, num_bits), dtype=np.uint8))
        full = unpack_bits(words, words_per_block(num_bits) * 64)
        assert full[:, :num_bits].all()
        assert not full[:, num_bits:].any()

    def test_packing_commutes_with_xor(self):
        rng = np.random.default_rng(9)
        a = rng.integers(0, 2, size=(11, 71), dtype=np.uint8)
        b = rng.integers(0, 2, size=(11, 71), dtype=np.uint8)
        assert np.array_equal(pack_bits(a ^ b), pack_bits(a) ^ pack_bits(b))

    def test_popcounts_match_bit_sums(self):
        rng = np.random.default_rng(10)
        bits = rng.integers(0, 2, size=(29, 130), dtype=np.uint8)
        words = pack_bits(bits)
        assert popcount(words) == int(bits.sum())
        assert np.array_equal(popcount_rows(words), bits.sum(axis=1, dtype=np.int64))

    def test_prefix_and_range_masks(self):
        mask = prefix_mask(71, 64)
        bits = unpack_bits(mask[np.newaxis, :], 71)[0]
        assert bits[:64].all() and not bits[64:].any()
        window = unpack_bits(range_mask(130, 65, 80)[np.newaxis, :], 130)[0]
        assert window[65:80].all()
        assert window.sum() == 15


# ------------------------------------------------------------- coding equivalence
@pytest.mark.parametrize("name", available_codes())
class TestPackedCodingEquivalence:
    def test_encode_batch_packed_matches_unpacked(self, name):
        code = get_code(name)
        rng = np.random.default_rng(_seed(name))
        messages = rng.integers(0, 2, size=(64, code.k), dtype=np.uint8)
        unpacked = code.encode_batch(messages)
        packed = encode_blocks_packed(code, pack_bits(messages))
        assert packed.dtype == np.uint64
        assert np.array_equal(unpack_bits(packed, code.n), unpacked)

    def test_decode_batch_packed_matches_unpacked(self, name):
        code = get_code(name)
        rng = np.random.default_rng(_seed(name) + 1)
        _, _, received = _corrupted_batch(code, rng)
        unpacked = code.decode_batch(received)
        packed = decode_blocks_packed(code, pack_bits(received)).unpack()
        assert np.array_equal(packed.message_bits, unpacked.message_bits)
        assert np.array_equal(packed.corrected_codewords, unpacked.corrected_codewords)
        assert np.array_equal(packed.detected_error, unpacked.detected_error)
        assert np.array_equal(packed.corrected, unpacked.corrected)
        assert np.array_equal(packed.failure, unpacked.failure)

    @pytest.mark.parametrize("channel_kind", ["bsc", "awgn"])
    def test_channel_pipeline_bit_exact(self, name, channel_kind):
        """Same seed -> packed and unpacked channel pipelines agree bit-exactly."""
        code = get_code(name)
        rng = np.random.default_rng(_seed(name) + 2)
        messages = rng.integers(0, 2, size=(48, code.k), dtype=np.uint8)
        codewords = encode_blocks(code, messages)

        def make_channel(seed):
            if channel_kind == "bsc":
                return BinarySymmetricChannel(0.02, rng=np.random.default_rng(seed))
            return OOKAWGNChannel(
                2e-5, crosstalk_power_w=1e-6, rng=np.random.default_rng(seed)
            )

        unpacked_channel = make_channel(_seed(name) + 3)
        packed_channel = make_channel(_seed(name) + 3)
        received = unpacked_channel.transmit_batch(codewords)
        received_words = packed_channel.transmit_batch_packed(pack_bits(codewords), n=code.n)
        assert np.array_equal(pack_bits(received), received_words)

        unpacked = code.decode_batch(received)
        packed = decode_blocks_packed(code, received_words).unpack()
        assert np.array_equal(packed.message_bits, unpacked.message_bits)
        assert np.array_equal(packed.corrected, unpacked.corrected)
        assert np.array_equal(packed.failure, unpacked.failure)

    @pytest.mark.parametrize("model_kind", ["independent", "burst"])
    def test_fault_model_pipeline_bit_exact(self, name, model_kind):
        """Same seed -> packed and unpacked fault injection agree bit-exactly."""
        code = get_code(name)
        rng = np.random.default_rng(_seed(name) + 4)
        messages = rng.integers(0, 2, size=(48, code.k), dtype=np.uint8)
        codewords = encode_blocks(code, messages)

        def make_model(seed):
            if model_kind == "independent":
                return IndependentErrorModel(0.02, rng=np.random.default_rng(seed))
            return BurstErrorModel(
                good_error_probability=1e-3,
                bad_error_probability=0.4,
                good_to_bad_probability=0.02,
                bad_to_good_probability=0.2,
                rng=np.random.default_rng(seed),
            )

        corrupted = make_model(_seed(name) + 5).apply(codewords)
        corrupted_words = make_model(_seed(name) + 5).apply_packed(
            pack_bits(codewords), n=code.n
        )
        assert np.array_equal(pack_bits(corrupted), corrupted_words)

        unpacked = code.decode_batch(corrupted)
        packed = decode_blocks_packed(code, corrupted_words).unpack()
        assert np.array_equal(packed.message_bits, unpacked.message_bits)
        assert np.array_equal(packed.corrected, unpacked.corrected)
        assert np.array_equal(packed.failure, unpacked.failure)


class TestPackedErrorMasks:
    @pytest.mark.parametrize("model_kind", ["independent", "burst"])
    def test_error_mask_packed_matches_error_pattern(self, model_kind):
        def make_model(seed):
            if model_kind == "independent":
                return IndependentErrorModel(0.01, rng=np.random.default_rng(seed))
            return BurstErrorModel(rng=np.random.default_rng(seed))

        pattern = make_model(31).error_pattern(64 * 71)
        mask = make_model(31).error_mask_packed(64, n=71)
        assert np.array_equal(pack_bits(pattern.reshape(64, 71)), mask)

    def test_error_mask_packed_clean_draw_is_zero(self):
        model = IndependentErrorModel(0.0, rng=np.random.default_rng(0))
        mask = model.error_mask_packed(8, n=71)
        assert mask.shape == (8, 2)
        assert not mask.any()

    def test_sparse_error_positions_distribution(self):
        """Sparse binomial thinning matches the dense Bernoulli field statistically."""
        model = IndependentErrorModel(5e-4, rng=np.random.default_rng(77))
        totals = [model.sparse_error_positions(10_000).size for _ in range(400)]
        mean = np.mean(totals)
        assert mean == pytest.approx(5.0, rel=0.25)
        positions = model.sparse_error_positions(10_000)
        assert positions.size == np.unique(positions).size

    def test_sparse_error_positions_zero_probability(self):
        model = IndependentErrorModel(0.0, rng=np.random.default_rng(1))
        assert model.sparse_error_positions(4096).size == 0


# ------------------------------------------------------------------- batch BM
@pytest.mark.parametrize("parameters", [(4, 2), (5, 2), (5, 3), (6, 2), (6, 3)])
class TestBatchBerlekampMassey:
    def test_matches_reference_at_failure_inducing_ber(self, parameters):
        """Batch BM + Chien vs the scalar reference, with >t-error failures."""
        m, t = parameters
        code = BCHCode(m, t)
        rng = np.random.default_rng(m * 100 + t)
        # Mean t + 1.5 errors/block guarantees a healthy mix of clean,
        # correctable and beyond-capability (failure) patterns.
        _, _, received = _corrupted_batch(code, rng, num_blocks=256, mean_errors=t + 1.5)
        batch = code.decode_batch(received)
        failures = 0
        for index, block in enumerate(received):
            reference = code._decode_block_reference(block)
            assert np.array_equal(batch.message_bits[index], reference.message_bits), index
            assert np.array_equal(
                batch.corrected_codewords[index], reference.corrected_codeword
            ), index
            assert bool(batch.detected_error[index]) == reference.detected_error, index
            assert bool(batch.corrected[index]) == reference.corrected, index
            assert bool(batch.failure[index]) == reference.failure, index
            failures += int(reference.failure)
        assert failures > 0, "workload never exceeded the correction capability"

    def test_clean_blocks_decode_clean(self, parameters):
        m, t = parameters
        code = BCHCode(m, t)
        rng = np.random.default_rng(m * 200 + t)
        messages = rng.integers(0, 2, size=(32, code.k), dtype=np.uint8)
        result = code.decode_batch(code.encode_batch(messages))
        assert np.array_equal(result.message_bits, messages)
        assert not result.detected_error.any()


# ------------------------------------------------------------------- batch CRC
@pytest.mark.parametrize("crc_name", ["crc4-itu", "crc8", "crc16-ccitt", "crc32"])
class TestBatchCRC:
    def test_checksum_batch_matches_bit_serial(self, crc_name):
        crc = CyclicRedundancyCheck.from_name(crc_name)
        rng = np.random.default_rng(sum(crc_name.encode()))
        for length in (1, 5, 8, 13, 512, 529):
            messages = rng.integers(0, 2, size=(23, length), dtype=np.uint8)
            batch = crc.checksum_batch_bits(messages)
            scalar = np.stack([crc.checksum(message) for message in messages])
            assert np.array_equal(batch, scalar), length

    def test_empty_message_matches_bit_serial_zero_register(self, crc_name):
        crc = CyclicRedundancyCheck.from_name(crc_name)
        batch = crc.checksum_batch_bits(np.zeros((3, 0), dtype=np.uint8))
        scalar = crc.checksum(np.zeros(0, dtype=np.uint8))
        assert np.array_equal(batch, np.tile(scalar, (3, 1)))

    def test_verify_batch_matches_scalar_verify(self, crc_name):
        crc = CyclicRedundancyCheck.from_name(crc_name)
        rng = np.random.default_rng(sum(crc_name.encode()) + 1)
        messages = rng.integers(0, 2, size=(40, 96), dtype=np.uint8)
        protected = np.concatenate([messages, crc.checksum_batch_bits(messages)], axis=1)
        flips = (rng.random(protected.shape) < 0.02).astype(np.uint8)
        corrupted = protected ^ flips
        batch = crc.verify_batch(corrupted)
        scalar = np.array([crc.verify(row) for row in corrupted])
        assert np.array_equal(batch, scalar)
        assert crc.verify_batch(protected).all()
