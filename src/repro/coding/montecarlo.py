"""Monte-Carlo estimation of post-decoding bit error rates.

The analytic expressions in :mod:`repro.coding.theory` are approximations;
this module provides the empirical counterpart used by the validation
examples and the property-based tests: push random messages through
encode → binary-symmetric channel → decode and count residual bit errors.

The engine is batched *and packed*: messages are drawn directly as packed
``uint64`` words (:func:`draw_message_words` — same consumed RNG stream as
the historical draw-then-pack path), encoded, corrupted and decoded
``batch_size`` blocks at a time through the packed coding API
(:meth:`~repro.coding.base.LinearBlockCode.encode_batch_packed` /
:meth:`~repro.coding.base.LinearBlockCode.decode_batch_packed`), and
residual message-bit errors are counted with packed popcounts — the random
stream is consumed exactly like the unpacked pipeline, so results are
bit-identical, just without ever shuttling one-byte-per-bit matrices
between the stages.  Codes without the packed API (duck-typed schemes that
predate it, or non-systematic codes) still run through the unpacked
:func:`~repro.coding.base.encode_blocks` / :func:`~repro.coding.base.decode_blocks`
fallback.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

import numpy as np

from ..exceptions import ConfigurationError
from .base import decode_blocks, decode_blocks_packed, encode_blocks, encode_blocks_packed
from .packed import pack_bits, popcount_rows, prefix_mask, words_per_block

__all__ = [
    "MonteCarloBERResult",
    "estimate_ber_monte_carlo",
    "draw_message_words",
    "DEFAULT_BATCH_SIZE",
    "shard_seed_sequences",
    "resolve_rng",
]

#: Default number of blocks simulated per vectorized batch.  Large enough to
#: amortise the per-batch Python overhead, small enough that the working set
#: (a few (B, n) uint8/float matrices) stays cache- and memory-friendly.
DEFAULT_BATCH_SIZE = 8192


def shard_seed_sequences(seed: int, num_shards: int) -> list[np.random.SeedSequence]:
    """Deterministic per-shard seed sequences for a sharded Monte-Carlo sweep.

    Returns the ``num_shards`` children that ``np.random.SeedSequence(seed)``
    would produce with :meth:`~numpy.random.SeedSequence.spawn`, constructed
    directly from their spawn keys.  Because child ``i`` depends only on
    ``(seed, i)`` — never on which process asks, in what order, or how many
    siblings were spawned before it — every shard of a sweep can rebuild its
    own generator independently, which is what makes the parallel experiment
    orchestrator byte-identical to a serial run.
    """
    if num_shards < 0:
        raise ConfigurationError("number of shards cannot be negative")
    return [np.random.SeedSequence(seed, spawn_key=(index,)) for index in range(num_shards)]


def resolve_rng(
    rng: np.random.Generator | None = None,
    seed: int | np.random.SeedSequence | None = None,
) -> np.random.Generator:
    """Build the generator for a simulation from either a ``rng`` or a ``seed``.

    Exactly one of ``rng``/``seed`` may be given; with neither, a fresh
    OS-entropy generator is returned.  Shared by the Monte-Carlo engine, the
    link simulator and the sweep orchestrator so every entry point accepts
    the same seeding vocabulary.
    """
    if rng is not None and seed is not None:
        raise ConfigurationError("pass either rng or seed, not both")
    if rng is not None:
        return rng
    if seed is not None:
        return np.random.default_rng(seed)
    return np.random.default_rng()


# --------------------------------------------------------------- packed draws
#
# ``generator.integers(0, 2, size=N, dtype=uint8)`` produces each fair bit by
# Lemire's multiply-shift reduction of one buffered byte — ``(byte * 2) >> 8``,
# i.e. the *top* bit of each byte — consuming the bytes of one ``next_uint32``
# low byte first and discarding the unused remainder of the final word.  A
# full-range ``integers(0, 2**32, size=ceil(N/4), dtype=uint32)`` call consumes
# exactly the same ``next_uint32`` values (bounded generation with a
# power-of-two range never rejects), so the packed message words can be
# assembled straight from those words with bit arithmetic: the generator state
# after the draw — and therefore every later channel draw — is identical to
# the unpacked path's, and so are the drawn bits.  The equivalence is an
# implementation detail of NumPy's bit generator, so it is *verified once at
# runtime* against the unpacked draw (see ``_packed_draw_supported``); if a
# NumPy release ever changes the reduction, the engine falls back to the
# draw-then-pack path and stays bit-exact by construction.

#: In-word bit positions of the four stream bits carried by one uint32 draw
#: (top bit of each byte, low byte first).
_DRAW_BIT_SHIFTS = np.array([7, 15, 23, 31], dtype=np.uint32)
_PACKED_DRAW_OK: bool | None = None


def _draw_words_from_uint32_stream(
    generator: np.random.Generator, num_blocks: int, num_bits: int
) -> np.ndarray:
    """Draw a packed ``(num_blocks, ceil(num_bits/64))`` fair-bit matrix.

    Consumes the generator exactly like
    ``integers(0, 2, size=(num_blocks, num_bits), dtype=uint8)`` (verified by
    :func:`_packed_draw_supported`) but assembles the ``np.packbits`` byte
    image directly from the raw ``uint32`` words — no per-bit byte matrix is
    ever materialised.
    """
    total_bits = num_blocks * num_bits
    raw = generator.integers(0, 1 << 32, size=-(-total_bits // 4), dtype=np.uint32)
    # Compact the four spread stream bits of each word into an MSB-first
    # nibble with one carry-free multiply: the mask isolates bits
    # {7, 15, 23, 31}, the multiplier lands them on bits {38, 37, 36, 35}.
    nibbles = (
        (raw.astype(np.uint64) & np.uint64(0x80808080)) * np.uint64(0x80402010)
        >> np.uint64(35)
    ) & np.uint64(0xF)
    if nibbles.size % 2:
        nibbles = np.concatenate([nibbles, np.zeros(1, dtype=np.uint64)])
    # Two consecutive nibbles form one byte of the flat packbits image; two
    # trailing zero bytes cover the (zero) padding reads of the last row.
    flat = np.zeros(nibbles.size // 2 + 2, dtype=np.uint8)
    flat[:-2] = (nibbles[0::2] << np.uint64(4) | nibbles[1::2]).astype(np.uint8)

    num_words = words_per_block(num_bits)
    byte_image = np.zeros((num_blocks, num_words * 8), dtype=np.uint8)
    row_bytes = -(-num_bits // 8)
    if num_bits % 8 == 0:
        byte_image[:, :row_bytes] = flat[: num_blocks * row_bytes].reshape(
            num_blocks, row_bytes
        )
    else:
        # Rows start at arbitrary bit offsets of the flat stream; rebuild each
        # row byte from the two flat bytes that straddle it.
        starts = np.arange(num_blocks, dtype=np.int64) * num_bits
        offsets = (starts % 8).astype(np.uint16)[:, np.newaxis]
        index = (starts // 8)[:, np.newaxis] + np.arange(row_bytes, dtype=np.int64)
        shifted = (flat[index].astype(np.uint16) << np.uint16(8)) | flat[index + 1]
        byte_image[:, :row_bytes] = ((shifted << offsets) >> np.uint16(8)).astype(np.uint8)
        tail = num_bits % 8
        byte_image[:, row_bytes - 1] &= np.uint8((0xFF << (8 - tail)) & 0xFF)
    return byte_image.view(np.uint64)


def _packed_draw_supported() -> bool:
    """One-time runtime check that the uint32 reconstruction matches NumPy."""
    global _PACKED_DRAW_OK
    if _PACKED_DRAW_OK is None:
        probe = 271828182845
        reference = np.random.default_rng(probe)
        bits = reference.integers(0, 2, size=(5, 23), dtype=np.uint8)
        reference_tail = reference.random(4)
        candidate = np.random.default_rng(probe)
        words = _draw_words_from_uint32_stream(candidate, 5, 23)
        _PACKED_DRAW_OK = bool(
            np.array_equal(words, pack_bits(bits))
            and np.array_equal(candidate.random(4), reference_tail)
        )
    return _PACKED_DRAW_OK


def draw_message_words(
    generator: np.random.Generator, num_blocks: int, num_bits: int
) -> np.ndarray:
    """Uniform random packed ``(num_blocks, ceil(num_bits/64))`` message words.

    Bit-exact twin of ``pack_bits(generator.integers(0, 2, size=(num_blocks,
    num_bits), dtype=uint8))`` — same values, same generator state afterwards —
    built packed end to end when the runtime reconstruction check passes, and
    through the unpacked draw otherwise.
    """
    if num_blocks < 0 or num_bits < 1:
        raise ConfigurationError("message draws need num_blocks >= 0 and num_bits >= 1")
    if _packed_draw_supported():
        return _draw_words_from_uint32_stream(generator, num_blocks, num_bits)
    return pack_bits(generator.integers(0, 2, size=(num_blocks, num_bits), dtype=np.uint8))


@dataclass(frozen=True)
class MonteCarloBERResult:
    """Outcome of a Monte-Carlo BER estimation run."""

    code_name: str
    raw_ber: float
    estimated_ber: float
    bits_simulated: int
    bit_errors: int
    blocks_simulated: int
    block_errors: int

    @property
    def block_error_rate(self) -> float:
        """Fraction of blocks with at least one residual error."""
        if self.blocks_simulated == 0:
            return 0.0
        return self.block_errors / self.blocks_simulated

    def confidence_interval(self, z: float = 1.96) -> tuple[float, float]:
        """Normal-approximation confidence interval on the estimated BER."""
        if self.bits_simulated == 0:
            return (0.0, 0.0)
        p = self.estimated_ber
        half_width = z * math.sqrt(max(p * (1.0 - p), 1e-300) / self.bits_simulated)
        return (max(0.0, p - half_width), min(1.0, p + half_width))


def estimate_ber_monte_carlo(
    code,
    raw_ber: float,
    *,
    num_blocks: int = 2000,
    rng: np.random.Generator | None = None,
    seed: int | np.random.SeedSequence | None = None,
    batch_size: int = DEFAULT_BATCH_SIZE,
) -> MonteCarloBERResult:
    """Estimate the post-decoding BER of ``code`` on a BSC.

    Parameters
    ----------
    code:
        Any object following the coding API (``n``, ``k``, batch or scalar
        encode/decode), including :class:`~repro.coding.uncoded.UncodedScheme`.
    raw_ber:
        Crossover probability of the binary symmetric channel.
    num_blocks:
        Number of independent codewords to simulate.
    rng:
        Optional numpy random generator for reproducibility.
    seed:
        Alternative to ``rng``: an integer or :class:`~numpy.random.SeedSequence`
        from which the generator is built (see :func:`resolve_rng`).
    batch_size:
        Number of blocks simulated per vectorized batch; the default keeps
        the per-batch arrays comfortably in memory while leaving the hot
        path entirely inside NumPy.
    """
    if not 0.0 <= raw_ber <= 1.0:
        raise ConfigurationError("raw BER must lie in [0, 1]")
    if num_blocks < 1:
        raise ConfigurationError("at least one block must be simulated")
    if batch_size < 1:
        raise ConfigurationError("batch size must be at least 1")
    generator = resolve_rng(rng, seed)

    bit_errors = 0
    block_errors = 0
    k = code.k
    n = code.n
    # The packed fast path counts residual errors on the systematic message
    # prefix of the corrected codewords, which is only valid for codes that
    # expose the packed API (all in-package codes; they are systematic by
    # construction).  Duck-typed codes keep the unpacked message comparison.
    packed_path = (
        getattr(code, "encode_batch_packed", None) is not None
        and getattr(code, "decode_batch_packed", None) is not None
    )
    message_mask = prefix_mask(n, k) if packed_path else None
    for start in range(0, num_blocks, batch_size):
        count = min(batch_size, num_blocks - start)
        if packed_path:
            # Messages are drawn straight into packed words (same consumed
            # RNG stream as the unpacked draw — see draw_message_words).
            codeword_words = encode_blocks_packed(code, draw_message_words(generator, count, k))
            flip_words = pack_bits(generator.random((count, n)) < raw_ber)
            decoded = decode_blocks_packed(code, codeword_words ^ flip_words)
            errors_per_block = popcount_rows(
                (decoded.corrected_words ^ codeword_words) & message_mask
            )
        else:
            messages = generator.integers(0, 2, size=(count, k), dtype=np.uint8)
            codewords = encode_blocks(code, messages)
            flips = (generator.random((count, n)) < raw_ber).astype(np.uint8)
            decoded_bits = decode_blocks(code, codewords ^ flips).message_bits
            errors_per_block = np.count_nonzero(decoded_bits != messages, axis=1)
        bit_errors += int(errors_per_block.sum())
        block_errors += int(np.count_nonzero(errors_per_block))
    bits = num_blocks * k
    return MonteCarloBERResult(
        code_name=getattr(code, "name", type(code).__name__),
        raw_ber=float(raw_ber),
        estimated_ber=bit_errors / bits,
        bits_simulated=bits,
        bit_errors=bit_errors,
        blocks_simulated=num_blocks,
        block_errors=block_errors,
    )
