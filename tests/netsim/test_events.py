"""Tests for the deterministic event queue."""

from __future__ import annotations

import pytest

from repro.exceptions import ConfigurationError
from repro.netsim.events import Event, EventKind, EventQueue


class TestEventQueue:
    def test_pops_in_time_order(self):
        queue = EventQueue()
        queue.push(3.0, EventKind.ARRIVAL, "c")
        queue.push(1.0, EventKind.ARRIVAL, "a")
        queue.push(2.0, EventKind.DEPARTURE, "b")
        assert [event.payload for event in queue.drain()] == ["a", "b", "c"]

    def test_simultaneous_events_pop_in_insertion_order(self):
        queue = EventQueue()
        for index in range(50):
            queue.push(1.0, EventKind.ARRIVAL, index)
        assert [event.payload for event in queue.drain()] == list(range(50))

    def test_interleaved_push_pop_keeps_order(self):
        queue = EventQueue()
        queue.push(1.0, EventKind.ARRIVAL, "first")
        first = queue.pop()
        assert first.payload == "first"
        # A later push at the same time as a pending event must pop after it.
        queue.push(2.0, EventKind.ARRIVAL, "pending")
        queue.push(2.0, EventKind.DEPARTURE, "later")
        assert [event.payload for event in queue.drain()] == ["pending", "later"]

    def test_events_processed_counter(self):
        queue = EventQueue()
        for index in range(5):
            queue.push(float(index), EventKind.ARRIVAL)
        list(queue.drain())
        assert queue.events_processed == 5

    def test_len_and_truthiness(self):
        queue = EventQueue()
        assert not queue and len(queue) == 0
        queue.push(0.0, EventKind.ARRIVAL)
        assert queue and len(queue) == 1

    def test_negative_time_rejected(self):
        queue = EventQueue()
        with pytest.raises(ConfigurationError):
            queue.push(-1.0, EventKind.ARRIVAL)

    def test_pop_empty_rejected(self):
        with pytest.raises(ConfigurationError):
            EventQueue().pop()

    def test_event_ordering_ignores_payload(self):
        # Payloads are not comparable; ordering must never touch them.
        early = Event(1.0, 0, EventKind.ARRIVAL, object())
        late = Event(2.0, 1, EventKind.ARRIVAL, object())
        assert early < late


class TestMidDrainRobustness:
    """A consumer exception must not tear the heap mid-drain."""

    def test_consumer_exception_leaves_remaining_events_intact(self):
        queue = EventQueue()
        for index in range(6):
            queue.push(float(index), EventKind.ARRIVAL, index)
        with pytest.raises(RuntimeError):
            for event in queue.drain():
                if event.payload == 2:
                    raise RuntimeError("handler blew up")
        # The failing event was popped (drain pops before yielding), the
        # survivors still pop in order, and the counter saw only real pops.
        assert queue.events_processed == 3
        assert len(queue) == 3
        assert [event.payload for event in queue.drain()] == [3, 4, 5]
        assert queue.events_processed == 6

    def test_resumed_drain_accepts_new_pushes(self):
        queue = EventQueue()
        queue.push(1.0, EventKind.ARRIVAL, "a")
        queue.push(3.0, EventKind.ARRIVAL, "c")
        with pytest.raises(ValueError):
            for event in queue.drain():
                raise ValueError("first event is poison")
        # Ordering invariants survive the abort: a push landing between the
        # abort and the resume still sorts against the pending events.
        queue.push(2.0, EventKind.DEPARTURE, "b")
        assert [event.payload for event in queue.drain()] == ["b", "c"]
