"""Fixture suite for the RPR3xx hot-path / API hygiene rules."""

from __future__ import annotations

import textwrap

from repro.analysis import lint_source

#: Inside the configured hot modules (RPR301 applies).
HOT_PATH = "repro/netsim/events.py"
#: Anywhere else (RPR301 must stay silent).
COLD_PATH = "repro/manager/fixture.py"


def codes(source: str, path: str = COLD_PATH) -> list:
    return [finding.code for finding in lint_source(textwrap.dedent(source), path=path)]


class TestSlotsRequired:
    def test_plain_class_in_hot_module_is_flagged(self):
        source = """
        class Event:
            def __init__(self, t):
                self.t = t
        """
        assert codes(source, path=HOT_PATH) == ["RPR301"]

    def test_slots_class_is_fine(self):
        source = """
        class Event:
            __slots__ = ("t",)
            def __init__(self, t):
                self.t = t
        """
        assert codes(source, path=HOT_PATH) == []

    def test_dataclass_with_slots_is_fine(self):
        source = """
        from dataclasses import dataclass
        @dataclass(frozen=True, slots=True)
        class Event:
            t: float
        """
        assert codes(source, path=HOT_PATH) == []

    def test_dataclass_without_slots_is_flagged(self):
        source = """
        from dataclasses import dataclass
        @dataclass
        class Event:
            t: float
        """
        assert codes(source, path=HOT_PATH) == ["RPR301"]

    def test_enum_namedtuple_exception_are_exempt(self):
        source = """
        from enum import IntEnum
        from typing import NamedTuple
        class Kind(IntEnum):
            A = 0
        class Record(NamedTuple):
            t: float
        class SimError(ValueError):
            pass
        """
        assert codes(source, path=HOT_PATH) == []

    def test_cold_modules_are_not_checked(self):
        source = """
        class Anything:
            pass
        """
        assert codes(source, path=COLD_PATH) == []


class TestMutableDefaults:
    def test_list_default_is_flagged(self):
        assert codes("def f(x=[]):\n    return x\n") == ["RPR302"]

    def test_dict_call_default_is_flagged(self):
        assert codes("def f(x=dict()):\n    return x\n") == ["RPR302"]

    def test_kwonly_set_default_is_flagged(self):
        assert codes("def f(*, x={1}):\n    return x\n") == ["RPR302"]

    def test_none_default_is_fine(self):
        assert codes("def f(x=None):\n    return x or []\n") == []

    def test_tuple_and_frozen_constants_are_fine(self):
        assert codes("def f(x=(), y=0, z='a'):\n    return x, y, z\n") == []


class TestSilentExcept:
    def test_bare_except_is_flagged(self):
        source = """
        try:
            work()
        except:
            handle()
        """
        assert codes(source) == ["RPR303"]

    def test_except_exception_pass_is_flagged(self):
        source = """
        try:
            work()
        except Exception:
            pass
        """
        assert codes(source) == ["RPR303"]

    def test_narrow_pass_is_fine(self):
        # Narrow types with an intentional pass are a legitimate idiom
        # (e.g. "already dead" races around process termination).
        source = """
        try:
            work()
        except (OSError, ValueError):
            pass
        """
        assert codes(source) == []

    def test_broad_handler_that_logs_is_fine(self):
        source = """
        try:
            work()
        except Exception:
            logger.exception("work failed")
        """
        assert codes(source) == []


class TestAllDrift:
    def test_export_of_missing_name_is_flagged(self):
        source = """
        __all__ = ["gone"]
        def present():
            return 1
        """
        assert codes(source) == ["RPR304", "RPR304"]  # missing export + drift

    def test_public_def_missing_from_all_is_flagged(self):
        source = """
        __all__ = ["a"]
        def a():
            return 1
        def b():
            return 2
        """
        assert codes(source) == ["RPR304"]

    def test_consistent_module_is_fine(self):
        source = """
        __all__ = ["a", "B"]
        def a():
            return 1
        class B:
            pass
        def _private():
            return 3
        """
        assert codes(source) == []

    def test_reexports_count_as_defined(self):
        source = """
        from os.path import join
        __all__ = ["join"]
        """
        assert codes(source) == []

    def test_module_without_all_is_skipped(self):
        assert codes("def anything():\n    return 1\n") == []

    def test_computed_all_is_skipped(self):
        source = """
        __all__ = ["a"]
        __all__ += ["b"]
        def a():
            return 1
        """
        assert codes(source) == []
