"""Tests for GF(2^m) arithmetic and BCH codes."""

from __future__ import annotations

import numpy as np
import pytest

from repro.coding.bch import BCHCode
from repro.coding.galois import GaloisField
from repro.exceptions import ConfigurationError


class TestGaloisField:
    def test_field_sizes(self):
        field = GaloisField(4)
        assert field.size == 16
        assert field.order == 15
        assert field.m == 4

    def test_addition_is_xor(self):
        field = GaloisField(4)
        assert field.add(0b1010, 0b0110) == 0b1100

    def test_multiplication_by_zero_and_one(self):
        field = GaloisField(4)
        for element in range(field.size):
            assert field.multiply(element, 0) == 0
            assert field.multiply(element, 1) == element

    def test_multiplicative_inverse(self):
        field = GaloisField(5)
        for element in range(1, field.size):
            assert field.multiply(element, field.inverse(element)) == 1

    def test_inverse_of_zero_raises(self):
        field = GaloisField(3)
        with pytest.raises(ZeroDivisionError):
            field.inverse(0)

    def test_alpha_powers_cycle_with_period_order(self):
        field = GaloisField(4)
        assert field.alpha_power(0) == 1
        assert field.alpha_power(field.order) == 1
        seen = {field.alpha_power(i) for i in range(field.order)}
        assert len(seen) == field.order  # alpha is primitive

    def test_power_and_log_are_consistent(self):
        field = GaloisField(4)
        for exponent in range(1, field.order):
            element = field.alpha_power(exponent)
            assert field.log(element) == exponent

    def test_division(self):
        field = GaloisField(4)
        a, b = 9, 5
        assert field.multiply(field.divide(a, b), b) == a

    def test_minimal_polynomial_of_alpha_is_the_primitive_polynomial(self):
        field = GaloisField(4)
        minimal = field.minimal_polynomial(2)  # alpha
        # x^4 + x + 1 -> coefficients lowest-order first.
        assert minimal == [1, 1, 0, 0, 1]

    def test_minimal_polynomial_has_element_as_root(self):
        field = GaloisField(5)
        element = field.alpha_power(3)
        minimal = field.minimal_polynomial(element)
        assert field.poly_eval(minimal, element) == 0

    def test_rejects_unsupported_sizes(self):
        with pytest.raises(ConfigurationError):
            GaloisField(1)
        with pytest.raises(ConfigurationError):
            GaloisField(20)

    def test_rejects_non_primitive_polynomial(self):
        # x^4 + x^2 + 1 = (x^2+x+1)^2 is not primitive.
        with pytest.raises(ConfigurationError):
            GaloisField(4, primitive_polynomial=0b10101)


class TestBCHCode:
    def test_bch_15_7_parameters(self):
        code = BCHCode(4, 2)
        assert code.n == 15
        assert code.k == 7
        assert code.t == 2
        assert code.minimum_distance == 5

    def test_bch_63_t2_parameters(self):
        code = BCHCode(6, 2)
        assert code.n == 63
        assert code.k == 51

    def test_single_error_correction(self, rng):
        code = BCHCode(4, 2)
        message = rng.integers(0, 2, size=code.k, dtype=np.uint8)
        codeword = code.encode_block(message)
        for position in range(code.n):
            corrupted = codeword.copy()
            corrupted[position] ^= 1
            result = code.decode_block(corrupted)
            assert result.corrected, f"failed at position {position}"
            assert np.array_equal(result.message_bits, message)

    def test_double_error_correction(self, rng):
        code = BCHCode(4, 2)
        message = rng.integers(0, 2, size=code.k, dtype=np.uint8)
        codeword = code.encode_block(message)
        for first in range(0, code.n, 3):
            for second in range(first + 1, code.n, 4):
                corrupted = codeword.copy()
                corrupted[first] ^= 1
                corrupted[second] ^= 1
                result = code.decode_block(corrupted)
                assert np.array_equal(result.message_bits, message), (first, second)

    def test_double_error_correction_on_larger_code(self, rng):
        code = BCHCode(6, 2)
        message = rng.integers(0, 2, size=code.k, dtype=np.uint8)
        codeword = code.encode_block(message)
        for _ in range(15):
            positions = rng.choice(code.n, size=2, replace=False)
            corrupted = codeword.copy()
            corrupted[positions] ^= 1
            result = code.decode_block(corrupted)
            assert np.array_equal(result.message_bits, message)

    def test_error_free_block_is_untouched(self, rng):
        code = BCHCode(4, 2)
        message = rng.integers(0, 2, size=code.k, dtype=np.uint8)
        result = code.decode_block(code.encode_block(message))
        assert not result.detected_error
        assert np.array_equal(result.message_bits, message)

    def test_generator_polynomial_divides_codewords(self, rng):
        code = BCHCode(4, 2)
        # Every codeword evaluated at the BCH roots alpha^1..alpha^2t is zero.
        field = code.field
        message = rng.integers(0, 2, size=code.k, dtype=np.uint8)
        codeword = code.encode_block(message)
        poly = code._codeword_polynomial(codeword)
        for exponent in range(1, 2 * code.t + 1):
            assert field.poly_eval(poly, field.alpha_power(exponent)) == 0

    def test_rejects_invalid_t(self):
        with pytest.raises(ConfigurationError):
            BCHCode(4, 0)

    def test_rejects_overfull_codes(self):
        with pytest.raises(ConfigurationError):
            BCHCode(3, 4)  # the generator polynomial consumes the whole length-7 block

    def test_degenerate_bch_is_repetition_like(self):
        # BCH(m=3, t=3) keeps a single payload bit: the (7,1) repetition-like code.
        code = BCHCode(3, 3)
        assert code.k == 1


class TestPolynomialDivision:
    def test_division_round_trips(self):
        from repro.coding.bch import _poly_divmod_gf2, _poly_mul_gf2

        dividend = [1, 0, 1, 1, 0, 1]
        divisor = [1, 1, 0, 1]
        quotient, remainder = _poly_divmod_gf2(dividend, divisor)
        recombined = _poly_mul_gf2(quotient, divisor)
        recombined = [
            c ^ (remainder[i] if i < len(remainder) else 0)
            for i, c in enumerate(recombined)
        ]
        assert recombined == dividend[: len(recombined)]

    def test_zero_divisor_is_rejected(self):
        # Regression: an all-zero divisor used to degenerate the
        # trailing-zero strip loop and silently produce garbage.
        from repro.coding.bch import _poly_divmod_gf2

        with pytest.raises(ZeroDivisionError):
            _poly_divmod_gf2([1, 0, 1], [0, 0, 0])
        with pytest.raises(ZeroDivisionError):
            _poly_divmod_gf2([1, 1], [0])
