"""Legacy setup shim.

The canonical project metadata lives in ``pyproject.toml``; this file exists
so the package can be installed in editable mode on minimal/offline
environments where the PEP 660 editable-wheel path is unavailable
(``pip install -e . --no-build-isolation --no-use-pep517``).
"""

from setuptools import find_packages, setup

setup(
    name="repro",
    version="1.0.0",
    description=(
        "Energy/performance trade-off in nanophotonic interconnects using "
        "coding techniques (DAC 2017 reproduction)"
    ),
    package_dir={"": "src"},
    packages=find_packages(where="src"),
    python_requires=">=3.10",
    install_requires=["numpy>=1.24", "scipy>=1.10"],
    entry_points={
        "console_scripts": [
            "repro-experiments=repro.experiments.runner:main",
            "repro-serve=repro.service.server:main",
            "repro-lint=repro.analysis.cli:main",
        ],
    },
)
