"""Tests for the ``network`` experiment: grid shape, determinism, CLI wiring."""

from __future__ import annotations

import pytest

from repro.exceptions import ConfigurationError
from repro.experiments.network import (
    DEFAULT_LOADS,
    DEFAULT_PATTERNS,
    DEFAULT_POLICIES,
    request_rate_for_load,
    run_network,
    sweep_shards,
)
from repro.experiments.orchestrator import available_experiments, describe_grid, run_experiment
from repro.experiments.report import rows_to_csv

#: Small grid so the Monte-Carlo sweeps stay test-fast (12 shards).
FAST_NETWORK = {
    "patterns": ["uniform", "hotspot", "bursty"],
    "loads": [0.15, 0.75],
    "policies": ["min-power", "min-energy"],
    "num_requests": 150,
    "payload_bits": 2048,
    "seed": 5,
}


def _render(result: tuple[str, list[dict]]) -> str:
    text, rows = result
    return text + "\n---\n" + rows_to_csv(rows)


class TestGridShape:
    def test_network_is_registered(self):
        assert "network" in available_experiments()

    def test_default_grid_covers_every_pattern_load_policy(self):
        shards = sweep_shards()
        coords = {(s["pattern"], s["policy"], s["load"]) for s in shards}
        assert len(shards) == len(DEFAULT_PATTERNS) * len(DEFAULT_LOADS) * len(DEFAULT_POLICIES)
        for pattern in DEFAULT_PATTERNS:
            for policy in DEFAULT_POLICIES:
                for load in DEFAULT_LOADS:
                    assert (pattern, policy, load) in coords

    def test_spawn_indices_are_sequential(self):
        grid = describe_grid("network", options=FAST_NETWORK)
        indices = [shard["spawn_index"] for shard in grid.shard_params]
        assert indices == list(range(len(grid.shard_params)))

    def test_unknown_policy_rejected(self):
        with pytest.raises(ConfigurationError):
            sweep_shards(options={"policies": ["fastest-possible"]})

    def test_request_rate_scales_with_load(self):
        assert request_rate_for_load(0.5) == pytest.approx(2 * request_rate_for_load(0.25))
        with pytest.raises(ConfigurationError):
            request_rate_for_load(0.0)


class TestDeterminismGuard:
    def test_parallel_network_run_is_byte_identical_to_serial(self):
        # The same contract PR 2 established for the other experiments:
        # jobs=4 must reproduce the serial report byte for byte.
        serial = run_experiment("network", options=FAST_NETWORK)
        parallel = run_experiment("network", options=FAST_NETWORK, jobs=4)
        assert _render(serial) == _render(parallel)

    def test_run_network_matches_orchestrated_grid(self):
        direct = run_network(options=FAST_NETWORK)
        text, rows = run_experiment("network", options=FAST_NETWORK)
        assert direct.render_text() == text
        assert rows_to_csv(direct.to_rows()) == rows_to_csv(rows)


class TestSweepContent:
    @pytest.fixture(scope="class")
    def result(self):
        return run_network(options=FAST_NETWORK)

    def test_every_point_delivers_traffic(self, result):
        for row in result.rows:
            assert row["delivered_gbps"] > 0.0
            assert row["transfers_completed"] > 0

    def test_latency_grows_with_load(self, result):
        for pattern in FAST_NETWORK["patterns"]:
            for policy in FAST_NETWORK["policies"]:
                light, heavy = result.rows_for(pattern, policy)
                assert light["load"] < heavy["load"]
                assert heavy["latency_p50_s"] > light["latency_p50_s"]

    def test_hotspot_saturates_before_uniform(self, result):
        uniform = result.rows_for("uniform", "min-power")[-1]
        hotspot = result.rows_for("hotspot", "min-power")[-1]
        assert hotspot["latency_p99_s"] > uniform["latency_p99_s"]
        assert hotspot["delivered_gbps"] < uniform["delivered_gbps"]

    def test_report_renders_every_grid_point(self, result):
        text = result.render_text()
        for pattern in FAST_NETWORK["patterns"]:
            assert pattern in text
        assert text.count("min-power") == 6
        assert text.count("min-energy") == 6


class TestCheckpointing:
    def test_network_checkpoint_roundtrip(self, tmp_path):
        first = run_experiment(
            "network", options=FAST_NETWORK, checkpoint_dir=str(tmp_path)
        )
        resumed = run_experiment(
            "network", options=FAST_NETWORK, checkpoint_dir=str(tmp_path), resume=True
        )
        assert _render(first) == _render(resumed)


#: Tiny two-ring grid for the scale-out tests (8 shards).
RING_NETWORK = {
    "patterns": ["uniform"],
    "loads": [0.2, 0.6],
    "policies": ["min-power", "min-energy"],
    "num_requests": 120,
    "payload_bits": 2048,
    "seed": 5,
    "rings": 2,
}


class TestMultiRingSharding:
    def test_rings_multiply_the_shard_count(self):
        single = sweep_shards(options={**RING_NETWORK, "rings": 1})
        double = sweep_shards(options=RING_NETWORK)
        assert len(double) == 2 * len(single)
        assert [s["spawn_index"] for s in double] == list(range(len(double)))
        assert {s["ring"] for s in double} == {0, 1}

    def test_rings_are_independently_seeded(self):
        shards = sweep_shards(options=RING_NETWORK)
        point = [s for s in shards if s["load"] == 0.2 and s["policy"] == "min-power"]
        assert len(point) == 2
        from repro.experiments.network import run_sweep_shard

        rows = [run_sweep_shard(p) for p in point]
        # Same grid point, different ring -> different streams, different rows.
        assert rows[0]["latency_p50_s"] != rows[1]["latency_p50_s"]

    def test_merged_rows_aggregate_ring_counters_exactly(self):
        from repro.experiments.network import run_sweep_shard

        shards = sweep_shards(options=RING_NETWORK)
        payloads = [run_sweep_shard(p) for p in shards]
        _, rows = run_experiment("network", options=RING_NETWORK)
        assert len(rows) == len(shards) // 2
        for row in rows:
            ring_rows = [
                p
                for p in payloads
                if (p["pattern"], p["policy"], p["load"])
                == (row["pattern"], row["policy"], row["load"])
            ]
            assert len(ring_rows) == 2
            for key in ("transfers_completed", "packets_sent", "total_energy_j"):
                assert row[key] == sum(r[key] for r in ring_rows)
            assert "ring" not in row

    def test_multi_ring_parallel_is_byte_identical_to_serial(self):
        serial = run_experiment("network", options=RING_NETWORK)
        parallel = run_experiment("network", options=RING_NETWORK, jobs=4)
        assert _render(serial) == _render(parallel)

    def test_engine_choice_does_not_change_the_report(self):
        batched = run_experiment("network", options={**RING_NETWORK, "engine": "batched"})
        reference = run_experiment(
            "network", options={**RING_NETWORK, "engine": "reference"}
        )
        assert _render(batched) == _render(reference)

    def test_invalid_options_rejected(self):
        with pytest.raises(ConfigurationError):
            sweep_shards(options={"rings": 0})
        with pytest.raises(ConfigurationError):
            sweep_shards(options={"engine": "warp-drive"})
