"""Human-readable rendering of a run manifest (``obs-report``).

Turns the JSON provenance record of :mod:`repro.obs.manifest` into the
text report behind ``repro-experiments obs-report``: identity, environment
and timing up top, then the merged counters/gauges, histogram sketches and
a per-shard one-liner table.
"""

from __future__ import annotations

from typing import Iterable

__all__ = ["render_run_report"]


def _format_value(value: float) -> str:
    if isinstance(value, float) and not value.is_integer():
        return f"{value:.6g}"
    return f"{int(value):,}"


def _histogram_sketch(state: dict, width: int = 24) -> Iterable[str]:
    """One line per non-empty bucket with a proportional bar."""
    bounds = state["bounds"]
    counts = state["counts"]
    total = max(state["count"], 1)
    labels = [f"<= {edge:g}" for edge in bounds] + [f"> {bounds[-1]:g}"]
    peak = max(counts) or 1
    for label, count in zip(labels, counts):
        if count == 0:
            continue
        bar = "#" * max(1, round(width * count / peak))
        yield f"    {label:>12}  {count:>10,}  ({count / total:6.1%}) {bar}"


def render_run_report(manifest: dict) -> str:
    """Render one manifest into the ``obs-report`` text block."""
    lines: list[str] = []
    title = f"Run report — experiment {manifest.get('experiment', '?')!r}"
    lines.append(title)
    lines.append("=" * len(title))
    lines.append(f"fingerprint     : {manifest.get('fingerprint', '?')}")
    num_shards = manifest.get("num_shards", 0)
    resumed = manifest.get("resumed_shards", [])
    shard_note = f"{num_shards}" + (f" ({len(resumed)} resumed from checkpoint)" if resumed else "")
    lines.append(f"shards          : {shard_note}")
    invocation = manifest.get("invocation", {})
    if invocation:
        pairs = ", ".join(f"{key}={value}" for key, value in sorted(invocation.items()))
        lines.append(f"invocation      : {pairs}")
    environment = manifest.get("environment", {})
    if environment:
        lines.append(
            "environment     : "
            f"repro {environment.get('package_version', '?')}, "
            f"python {environment.get('python', '?')}, "
            f"numpy {environment.get('numpy', '?')}, "
            f"{environment.get('platform', '?')}"
        )
    timing = manifest.get("timing", {})
    if timing:
        wall = timing.get("wall_s")
        cpu = timing.get("cpu_s")
        parts = []
        if wall is not None:
            parts.append(f"wall {wall:.3f}s")
        if cpu is not None:
            parts.append(f"cpu {cpu:.3f}s")
        if parts:
            lines.append(f"timing          : {', '.join(parts)}")
    orchestrator = manifest.get("orchestrator", {})
    if orchestrator:
        pairs = ", ".join(
            f"{key}={_format_value(value)}" for key, value in sorted(orchestrator.items())
        )
        lines.append(f"orchestrator    : {pairs}")

    metrics = manifest.get("metrics", {})
    counters = metrics.get("counters", {})
    gauges = metrics.get("gauges", {})
    histograms = metrics.get("histograms", {})
    if counters or gauges:
        lines.append("")
        lines.append("Merged metrics (exact across shards)")
        lines.append("-" * 36)
        width = max((len(name) for name in (*counters, *gauges)), default=0)
        for name in sorted(counters):
            lines.append(f"  {name:<{width}}  {counters[name]:>14,}")
        for name in sorted(gauges):
            lines.append(f"  {name:<{width}}  {gauges[name]:>14.6g}")
    for name in sorted(histograms):
        state = histograms[name]
        lines.append("")
        lines.append(f"Histogram {name} ({state['count']:,} observations)")
        lines.extend(_histogram_sketch(state))

    shards = manifest.get("shards", [])
    observed = [shard for shard in shards if shard.get("metrics")]
    if observed:
        lines.append("")
        lines.append("Per-shard snapshot")
        lines.append("-" * 18)
        for shard in shards:
            snapshot = shard.get("metrics")
            if snapshot is None:
                lines.append(f"  shard {shard['index']:>3}: (resumed from checkpoint)")
                continue
            shard_counters = snapshot.get("counters", {})
            events = shard_counters.get("netsim.events.total")
            summary = (
                f"{events:,} events" if events is not None
                else f"{sum(shard_counters.values()):,} counts"
            )
            lines.append(f"  shard {shard['index']:>3}: {summary}")
    return "\n".join(lines)
