"""Command-line runner regenerating every table and figure of the paper.

Usage::

    python -m repro.experiments.runner             # run everything
    python -m repro.experiments.runner figure5     # run one experiment
    repro-experiments table1 figure6a              # via the console script
    repro-experiments figure5 --jobs 4             # parallel sweep shards
    repro-experiments validation --jobs 4 --checkpoint-dir ckpt
    repro-experiments validation --resume --checkpoint-dir ckpt

Each experiment prints a text report; ``--csv DIR`` additionally writes the
raw series as CSV files for external plotting.  Execution is delegated to
:mod:`repro.experiments.orchestrator`, which shards each experiment's
parameter grid, optionally fans the shards out over ``--jobs`` worker
processes, and — thanks to per-shard deterministic seeding — produces
byte-identical reports at any parallelism.  With ``--checkpoint-dir`` the
completed shards are persisted after each one, so an interrupted sweep
rerun with ``--resume`` picks up where it stopped.
"""

from __future__ import annotations

import argparse
import functools
import os
from typing import Callable, Dict

from .orchestrator import available_experiments, run_experiment
from .report import rows_to_csv, section

__all__ = ["main", "EXPERIMENTS"]


EXPERIMENTS: Dict[str, Callable[[], tuple[str, list[dict]]]] = {
    name: functools.partial(run_experiment, name) for name in available_experiments()
}
"""Mapping from experiment name to a runner producing ``(text, csv rows)``.

Kept for programmatic use (and API compatibility with the pre-orchestrator
runner); each entry executes the experiment's full grid serially.
"""


def main(argv: list[str] | None = None) -> int:
    """Entry point of ``repro-experiments``."""
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "experiments",
        nargs="*",
        help=f"experiments to run (default: all); available: {', '.join(sorted(EXPERIMENTS))}",
    )
    parser.add_argument(
        "--csv",
        metavar="DIR",
        default=None,
        help="directory in which to write one CSV file per experiment",
    )
    parser.add_argument(
        "--jobs",
        type=int,
        default=1,
        metavar="N",
        help="worker processes per experiment (default: 1; reports are "
        "byte-identical at any parallelism)",
    )
    parser.add_argument(
        "--checkpoint-dir",
        metavar="DIR",
        default=None,
        help="persist completed sweep shards to DIR after each shard",
    )
    parser.add_argument(
        "--resume",
        action="store_true",
        help="reuse matching shards from --checkpoint-dir (default: "
        ".repro-checkpoints) and run only the missing ones",
    )
    parser.add_argument(
        "--shard-timeout",
        type=float,
        default=None,
        metavar="SECONDS",
        help="pooled runs: kill and retry any shard attempt exceeding this "
        "wall-clock budget",
    )
    parser.add_argument(
        "--shard-retries",
        type=int,
        default=2,
        metavar="N",
        help="pooled runs: re-attempts per shard after a worker death or "
        "timeout before the sweep aborts (default: 2)",
    )
    args = parser.parse_args(argv)
    if args.jobs < 1:
        parser.error("--jobs must be at least 1")
    if args.shard_timeout is not None and args.shard_timeout <= 0:
        parser.error("--shard-timeout must be positive")
    if args.shard_retries < 0:
        parser.error("--shard-retries cannot be negative")
    checkpoint_dir = args.checkpoint_dir
    if args.resume and checkpoint_dir is None:
        checkpoint_dir = ".repro-checkpoints"

    names = args.experiments if args.experiments else sorted(EXPERIMENTS)
    unknown = [name for name in names if name not in EXPERIMENTS]
    if unknown:
        parser.error(
            f"unknown experiment(s) {unknown}; available: {', '.join(sorted(EXPERIMENTS))}"
        )
    for name in names:
        text, rows = run_experiment(
            name,
            jobs=args.jobs,
            checkpoint_dir=checkpoint_dir,
            resume=args.resume,
            shard_timeout_s=args.shard_timeout,
            max_shard_retries=args.shard_retries,
        )
        print(section(f"Experiment {name}", text))
        if args.csv:
            os.makedirs(args.csv, exist_ok=True)
            path = os.path.join(args.csv, f"{name}.csv")
            with open(path, "w", encoding="utf-8", newline="") as handle:
                handle.write(rows_to_csv(rows))
            print(f"[wrote {path}]")
    return 0


if __name__ == "__main__":  # pragma: no cover - exercised via the console script
    raise SystemExit(main())
