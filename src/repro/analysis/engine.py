"""The lint engine: parse once, run every applicable rule, filter, sort.

The public entry points are :func:`lint_source` (one source string — what
the fixture tests and the README snippet use), :func:`lint_file` and
:func:`lint_paths` (directory walk; what the CLI uses).  Each module is
parsed exactly once; rules receive a :class:`ModuleContext` carrying the
tree (with parent back-references), the resolved import map and the
configuration, and return findings via :meth:`ModuleContext.finding` so
location/snippet bookkeeping lives in one place.
"""

from __future__ import annotations

import ast
import os
from dataclasses import dataclass, field
from typing import Iterator, List, Optional, Sequence

from .astutil import ImportMap, attach_parents
from .baseline import Baseline
from .config import DEFAULT_CONFIG, LintConfig, normalize_path
from .findings import Finding
from .pragmas import PragmaTable, parse_pragmas
from .registry import PARSE_ERROR_CODE, all_rules

# Importing the rule modules registers their rules.
from . import concurrency as _concurrency  # noqa: F401  (registration import)
from . import determinism as _determinism  # noqa: F401  (registration import)
from . import hygiene as _hygiene  # noqa: F401  (registration import)

__all__ = ["ModuleContext", "LintRun", "lint_source", "lint_file", "lint_paths", "iter_python_files"]


@dataclass
class ModuleContext:
    """Everything a rule may look at for one module."""

    path: str
    tree: ast.Module
    lines: List[str]
    config: LintConfig
    imports: ImportMap

    def finding(self, node: ast.AST, code: str, message: str) -> Finding:
        line = getattr(node, "lineno", 1)
        col = getattr(node, "col_offset", 0) + 1
        snippet = self.lines[line - 1].strip() if 0 < line <= len(self.lines) else ""
        return Finding(
            path=self.path, line=line, col=col, code=code, message=message, snippet=snippet
        )


@dataclass
class LintRun:
    """The outcome of linting a path set."""

    findings: List[Finding] = field(default_factory=list)
    suppressed: List[Finding] = field(default_factory=list)
    #: Baseline entries that matched nothing (strict runs fail on these).
    stale_baseline: List[tuple] = field(default_factory=list)
    files_checked: int = 0

    @property
    def clean(self) -> bool:
        return not self.findings


def lint_source(
    source: str,
    path: str = "<string>",
    config: LintConfig = DEFAULT_CONFIG,
) -> List[Finding]:
    """Lint one source string; returns sorted findings (pragmas applied)."""
    normalized = normalize_path(path) if path != "<string>" else path
    lines = source.splitlines()
    pragmas = parse_pragmas(lines, normalized)
    try:
        tree = attach_parents(ast.parse(source))
    except SyntaxError as error:
        line = error.lineno or 1
        snippet = lines[line - 1].strip() if 0 < line <= len(lines) else ""
        return [
            Finding(
                path=normalized,
                line=line,
                col=(error.offset or 0) + 1 if error.offset else 1,
                code=PARSE_ERROR_CODE,
                message=f"file does not parse: {error.msg}",
                snippet=snippet,
            )
        ]
    context = ModuleContext(
        path=normalized,
        tree=tree,
        lines=lines,
        config=config,
        imports=ImportMap(tree),
    )
    findings: List[Finding] = list(pragmas.errors)
    for lint_rule in all_rules():
        if lint_rule.scope is not None and not config.path_matches(
            normalized, getattr(config, lint_rule.scope)
        ):
            continue
        if not config.rule_enabled(lint_rule.code, normalized):
            continue
        findings.extend(lint_rule.check(context))
    kept = [
        finding
        for finding in findings
        if not pragmas.suppresses(finding.code, finding.line)
    ]
    return sorted(kept)


def lint_file(path: str, config: LintConfig = DEFAULT_CONFIG) -> List[Finding]:
    with open(path, "r", encoding="utf-8") as handle:
        source = handle.read()
    return lint_source(source, path=path, config=config)


def iter_python_files(paths: Sequence[str]) -> Iterator[str]:
    """Every ``.py`` file under ``paths`` (files pass through), sorted."""
    for path in paths:
        if os.path.isfile(path):
            yield path
            continue
        for directory, subdirectories, files in os.walk(path):
            subdirectories[:] = sorted(
                name
                for name in subdirectories
                if not name.startswith(".") and name != "__pycache__"
            )
            for name in sorted(files):
                if name.endswith(".py"):
                    yield os.path.join(directory, name)


def lint_paths(
    paths: Sequence[str],
    config: LintConfig = DEFAULT_CONFIG,
    baseline: Optional[Baseline] = None,
) -> LintRun:
    """Lint every Python file under ``paths``, applying the baseline."""
    run = LintRun()
    collected: List[Finding] = []
    for file_path in iter_python_files(paths):
        collected.extend(lint_file(file_path, config=config))
        run.files_checked += 1
    if baseline is not None:
        kept, suppressed, stale = baseline.apply(collected)
        run.findings = kept
        run.suppressed = suppressed
        run.stale_baseline = list(stale)
    else:
        run.findings = sorted(collected)
    return run
