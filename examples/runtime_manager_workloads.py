"""Runtime manager on mixed real-time / multimedia workloads.

The paper argues that the ECC/laser configuration should be picked at run
time by an Operating-System-level manager: real-time transfers need the
shortest communication time, while multimedia-like transfers can accept a
longer (coded) transmission — or even a degraded BER — in exchange for much
lower power.  This example builds both workloads, serves them through the
:class:`~repro.manager.manager.OpticalLinkManager` under different policies,
and compares energy and deadline behaviour.

Run with::

    python examples/runtime_manager_workloads.py
"""

from __future__ import annotations

import numpy as np

from repro import DEFAULT_CONFIG, CommunicationRequest, OpticalLinkManager
from repro.manager import (
    DeadlineConstrainedPolicy,
    MinimumEnergyPolicy,
    MinimumPowerPolicy,
    RuntimeSimulation,
)
from repro.traffic import BurstyTrafficGenerator, PeriodicTask, TaskSet


def realtime_workload() -> list[tuple[CommunicationRequest, float | None]]:
    """A periodic control/task workload with tight deadlines and strict BER."""
    tasks = TaskSet(
        tasks=[
            PeriodicTask(
                name="sensor-fusion",
                source=1,
                destination=0,
                period_s=50e-6,
                payload_bits=4096,
                relative_deadline_s=5e-6,
                target_ber=1e-11,
            ),
            PeriodicTask(
                name="actuator-loop",
                source=2,
                destination=0,
                period_s=100e-6,
                payload_bits=2048,
                relative_deadline_s=4e-6,
                target_ber=1e-11,
            ),
        ]
    )
    requests = []
    for request in tasks.requests_until(1e-3):
        requests.append(
            (
                CommunicationRequest(
                    source=request.source,
                    destination=request.destination,
                    target_ber=request.target_ber,
                    payload_bits=request.payload_bits,
                ),
                request.deadline_s,
            )
        )
    return requests


def multimedia_workload() -> list[tuple[CommunicationRequest, float | None]]:
    """Bursty frame traffic with relaxed BER and soft (frame-rate) deadlines."""
    generator = BurstyTrafficGenerator(
        DEFAULT_CONFIG.num_onis,
        target_ber=1e-6,
        rng=np.random.default_rng(42),
    )
    requests = []
    for request in generator.generate(200):
        requests.append(
            (
                CommunicationRequest(
                    source=request.source,
                    destination=request.destination,
                    target_ber=request.target_ber,
                    payload_bits=request.payload_bits,
                ),
                request.deadline_s,
            )
        )
    return requests


def evaluate(policy_name: str, policy, workload) -> dict[str, float]:
    """Serve one workload with one policy and summarise the outcomes."""
    manager = OpticalLinkManager(default_policy=policy)
    simulation = RuntimeSimulation(manager=manager)
    outcomes = simulation.run(workload)
    selected = {}
    for outcome in outcomes:
        if outcome.configuration is not None:
            selected[outcome.configuration.code_name] = (
                selected.get(outcome.configuration.code_name, 0) + 1
            )
    return {
        "policy": policy_name,
        "transfers": len(outcomes),
        "total_energy_uj": RuntimeSimulation.total_energy_j(outcomes) * 1e6,
        "deadline_miss_rate": RuntimeSimulation.deadline_miss_rate(outcomes),
        "selections": selected,
    }


def main() -> None:
    """Compare manager policies on the two workload classes."""
    policies = [
        ("min-power", MinimumPowerPolicy()),
        ("min-energy", MinimumEnergyPolicy()),
        ("deadline (CT <= 1.2)", DeadlineConstrainedPolicy(max_communication_time=1.2)),
    ]
    for workload_name, workload_factory in (
        ("real-time task set", realtime_workload),
        ("multimedia frames", multimedia_workload),
    ):
        print(f"\n=== {workload_name} ===")
        workload = workload_factory()
        for policy_name, policy in policies:
            summary = evaluate(policy_name, policy, workload)
            picks = ", ".join(f"{name}: {count}" for name, count in summary["selections"].items())
            print(
                f"{policy_name:<22} transfers={summary['transfers']:4d} "
                f"energy={summary['total_energy_uj']:9.2f} uJ "
                f"deadline misses={summary['deadline_miss_rate'] * 100:5.1f}%  [{picks}]"
            )
    print(
        "\nThe deadline-constrained policy keeps the fast (uncoded or lightly coded)\n"
        "paths for the real-time set, while the power/energy policies steer the\n"
        "multimedia traffic onto the coded, low-laser-power configurations."
    )


if __name__ == "__main__":
    main()
