"""Tests for hard-fault timelines, the degradation ladder and engine wiring."""

from __future__ import annotations

import numpy as np
import pytest

from repro.config import DEFAULT_CONFIG
from repro.exceptions import ConfigurationError
from repro.manager.policies import DegradationLadder, margin_levels
from repro.manager.runtime import AdaptiveEccController
from repro.netsim import NetworkSimulator
from repro.netsim.failures import (
    FAULT_SCENARIOS,
    ChannelFaultTimeline,
    ChannelHealth,
    HardFaultModel,
    make_fault_model,
)
from repro.traffic.generators import UniformTrafficGenerator

NW = DEFAULT_CONFIG.num_wavelengths


class TestChannelHealth:
    def test_down_predicate(self):
        assert not ChannelHealth(wavelengths_available=NW).down
        assert ChannelHealth(wavelengths_available=0).down
        assert ChannelHealth(wavelengths_available=NW, blacked_out=True).down
        assert ChannelHealth(wavelengths_available=NW, failed=True).down


class TestChannelFaultTimeline:
    def test_nominal_before_first_fault(self):
        timeline = ChannelFaultTimeline(NW, fail_time_s=1e-6)
        health = timeline.health_at(0.5e-6)
        assert health.wavelengths_available == NW
        assert not health.down

    def test_lane_fail_is_permanent(self):
        timeline = ChannelFaultTimeline(NW, fail_time_s=1e-6)
        for t in (1e-6, 2e-6, 1.0):
            health = timeline.health_at(t)
            assert health.failed and health.down
            assert health.wavelengths_available == 0

    def test_wavelength_losses_accumulate(self):
        timeline = ChannelFaultTimeline(NW, wavelength_loss_times_s=[1e-6, 2e-6])
        assert timeline.health_at(1.5e-6).wavelengths_available == NW - 1
        assert timeline.health_at(3e-6).wavelengths_available == NW - 2

    def test_blackout_window_recovers(self):
        timeline = ChannelFaultTimeline(NW, blackout_windows_s=[(1e-6, 2e-6)])
        assert not timeline.health_at(0.9e-6).down
        assert timeline.health_at(1.5e-6).blacked_out
        after = timeline.health_at(2.5e-6)
        assert not after.down and after.wavelengths_available == NW

    def test_overlapping_blackouts_are_merged(self):
        timeline = ChannelFaultTimeline(
            NW, blackout_windows_s=[(1e-6, 3e-6), (2e-6, 4e-6)]
        )
        kinds = [t.kind for t in timeline.transitions()]
        assert kinds == ["blackout-start", "blackout-end"]
        assert timeline.health_at(3.5e-6).blacked_out

    def test_droop_steps_monotone_penalty(self):
        timeline = ChannelFaultTimeline(
            NW, droop_steps=[(1e-6, 2.0), (2e-6, 4.0)]
        )
        assert timeline.health_at(1.5e-6).ber_penalty_multiplier == 2.0
        assert timeline.health_at(2.5e-6).ber_penalty_multiplier == 4.0

    def test_nothing_after_a_hard_fail(self):
        timeline = ChannelFaultTimeline(
            NW, fail_time_s=1e-6, blackout_windows_s=[(2e-6, 3e-6)]
        )
        kinds = [t.kind for t in timeline.transitions()]
        assert kinds == ["lane-fail"]

    def test_negative_time_rejected(self):
        timeline = ChannelFaultTimeline(NW)
        with pytest.raises(ConfigurationError):
            timeline.health_at(-1.0)
        with pytest.raises(ConfigurationError):
            ChannelFaultTimeline(NW, fail_time_s=-1.0)
        with pytest.raises(ConfigurationError):
            ChannelFaultTimeline(NW, blackout_windows_s=[(2e-6, 1e-6)])


class TestHardFaultModel:
    def test_transitions_sorted_by_time_then_channel(self):
        model = HardFaultModel(
            [
                ChannelFaultTimeline(NW, fail_time_s=2e-6),
                ChannelFaultTimeline(NW, fail_time_s=1e-6),
            ]
        )
        transitions = model.transitions()
        assert [(t.time_s, t.channel) for t in transitions] == [(1e-6, 1), (2e-6, 0)]

    def test_mixed_wavelength_counts_rejected(self):
        with pytest.raises(ConfigurationError):
            HardFaultModel(
                [ChannelFaultTimeline(NW), ChannelFaultTimeline(NW - 1)]
            )

    def test_worst_case_penalty(self):
        model = HardFaultModel(
            [ChannelFaultTimeline(NW, droop_steps=[(1e-6, 3.0)]), ChannelFaultTimeline(NW)]
        )
        assert model.worst_case_penalty == 3.0


class TestMakeFaultModel:
    def test_none_scenario_returns_none(self):
        assert make_fault_model("none", 4, NW, seed=1) is None

    def test_unknown_scenario_rejected(self):
        with pytest.raises(ConfigurationError):
            make_fault_model("volcano", 4, NW, seed=1)

    def test_unknown_option_rejected(self):
        with pytest.raises(ConfigurationError):
            make_fault_model("blackout", 4, NW, seed=1, options={"severity": 3})

    @pytest.mark.parametrize("scenario", [s for s in FAULT_SCENARIOS if s != "none"])
    def test_same_seed_same_timelines(self, scenario):
        a = make_fault_model(scenario, 6, NW, seed=42, horizon_s=1e-5)
        b = make_fault_model(scenario, 6, NW, seed=42, horizon_s=1e-5)
        for channel in range(6):
            ta = a.timeline(channel).transitions()
            tb = b.timeline(channel).transitions()
            assert [(t.time_s, t.kind) for t in ta] == [(t.time_s, t.kind) for t in tb]

    def test_health_queries_are_order_independent(self):
        model = make_fault_model("mixed", 6, NW, seed=42, horizon_s=1e-5)
        times = np.linspace(0.0, 1e-5, 37)
        forward = [model.health(2, float(t)) for t in times]
        backward = [model.health(2, float(t)) for t in reversed(times)]
        assert forward == list(reversed(backward))


class TestDegradationLadder:
    def _ladder(self, **kwargs):
        return DegradationLadder(
            margins=margin_levels(8.0), num_wavelengths=NW, **kwargs
        )

    def test_nominal_channel_serves_at_full_rate(self):
        action = self._ladder().action_for(ChannelHealth(wavelengths_available=NW))
        assert action.serve and action.rung == "nominal"
        assert action.wavelengths == NW
        assert action.margin_multiplier == 1.0
        assert action.derate_factor == 1.0

    def test_lost_wavelengths_remap(self):
        action = self._ladder().action_for(ChannelHealth(wavelengths_available=NW - 1))
        assert action.serve and action.rung == "remap"
        assert action.wavelengths == NW - 1

    def test_droop_escalates_margin(self):
        action = self._ladder().action_for(
            ChannelHealth(wavelengths_available=NW, ber_penalty_multiplier=3.0)
        )
        assert action.serve and action.rung == "margin"
        assert action.margin_multiplier == 4.0  # smallest ladder level >= 3

    def test_penalty_beyond_ladder_derates(self):
        action = self._ladder().action_for(
            ChannelHealth(wavelengths_available=NW, ber_penalty_multiplier=20.0)
        )
        assert action.serve and action.rung == "derate"
        # Each halving buys a 2x raw-BER allowance: 20/2 = 10 still exceeds
        # the top margin (8), 20/4 = 5 fits.
        assert action.derate_factor == 4.0
        assert action.margin_multiplier >= 20.0 / action.derate_factor

    def test_unrecoverable_penalty_declares_down(self):
        ladder = self._ladder(max_derate_factor=2.0)
        action = ladder.action_for(
            ChannelHealth(wavelengths_available=NW, ber_penalty_multiplier=1e6)
        )
        assert not action.serve and action.rung == "down"

    def test_failed_channel_is_down_but_blackout_is_deferrable(self):
        ladder = self._ladder()
        failed = ladder.action_for(ChannelHealth(wavelengths_available=0, failed=True))
        assert not failed.serve and failed.rung == "down"
        # A blackout is transient: the ladder keeps serving (the engine
        # defers the attempt through the backed-off retry path instead).
        blackout = ladder.action_for(
            ChannelHealth(wavelengths_available=NW, blacked_out=True)
        )
        assert blackout.serve and blackout.rung == "blackout"

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            DegradationLadder(margins=[2.0, 1.0], num_wavelengths=NW)
        with pytest.raises(ConfigurationError):
            DegradationLadder(margins=[1.0], num_wavelengths=0)


class TestControllerForceMargin:
    def test_escalates_to_covering_level(self):
        controller = AdaptiveEccController(margins=[1.0, 2.0, 4.0], mode="adaptive")
        assert controller.force_margin(0, 3.0, now_s=1e-6)
        assert controller.margins[controller.level(0)] == 4.0
        assert controller.blocked_until(0) > 1e-6

    def test_never_downgrades(self):
        controller = AdaptiveEccController(margins=[1.0, 2.0, 4.0], mode="adaptive")
        controller.force_margin(0, 4.0, now_s=0.0)
        assert not controller.force_margin(0, 1.5, now_s=1e-6)
        assert controller.margins[controller.level(0)] == 4.0

    def test_invalid_multiplier_rejected(self):
        controller = AdaptiveEccController(margins=[1.0, 2.0], mode="adaptive")
        with pytest.raises(ConfigurationError):
            controller.force_margin(0, 0.5, now_s=0.0)


def _traffic(n=200, seed=1):
    generator = UniformTrafficGenerator(
        DEFAULT_CONFIG.num_onis, mean_request_rate_hz=5e8, seed=seed
    )
    return list(generator.generate(n))


def _all_channels(timeline_factory):
    return HardFaultModel(
        [timeline_factory() for _ in range(DEFAULT_CONFIG.num_onis)]
    )


class TestEngineFaultWiring:
    def test_constructor_validation(self):
        failures = _all_channels(lambda: ChannelFaultTimeline(NW))
        ladder = DegradationLadder(margins=[1.0, 2.0], num_wavelengths=NW)
        with pytest.raises(ConfigurationError):
            NetworkSimulator(failures=failures, mode="bit-exact")
        with pytest.raises(ConfigurationError):
            NetworkSimulator(degradation=ladder)  # ladder without failures
        with pytest.raises(ConfigurationError):
            # Ladder requires a positive backoff (blackout deferral path).
            NetworkSimulator(failures=failures, degradation=ladder)
        with pytest.raises(ConfigurationError):
            NetworkSimulator(retry_backoff_s=-1.0)
        with pytest.raises(ConfigurationError):
            NetworkSimulator(transfer_timeout_s=0.0)

    def test_lane_fail_drops_and_charges_downtime(self):
        requests = _traffic()
        horizon = max(r.arrival_time_s for r in requests)
        fail_at = horizon / 3
        failures = _all_channels(
            lambda: ChannelFaultTimeline(NW, fail_time_s=fail_at)
        )
        ladder = DegradationLadder(margins=[1.0, 2.0], num_wavelengths=NW)
        sim = NetworkSimulator(
            seed=3, failures=failures, degradation=ladder, retry_backoff_s=1e-8
        )
        metrics = sim.run(iter(requests)).metrics()
        assert metrics.transfers_dropped > 0
        assert metrics.availability < 1.0
        assert metrics.recoveries == 0  # lane fails never come back
        assert metrics.channel_downtime_s > 0.0

    def test_blackout_defers_and_recovers(self):
        requests = _traffic()
        horizon = max(r.arrival_time_s for r in requests)
        window = (horizon * 0.3, horizon * 0.5)
        failures = _all_channels(
            lambda: ChannelFaultTimeline(NW, blackout_windows_s=[window])
        )
        ladder = DegradationLadder(margins=[1.0, 2.0], num_wavelengths=NW)
        sim = NetworkSimulator(
            seed=3,
            failures=failures,
            degradation=ladder,
            retry_backoff_s=horizon / 50,
            transfer_timeout_s=horizon,
        )
        result = sim.run(iter(requests))
        metrics = result.metrics()
        assert metrics.recoveries == DEFAULT_CONFIG.num_onis
        assert metrics.mean_time_to_recover_s == pytest.approx(window[1] - window[0])
        # Deferred transfers were eventually delivered after the blackout.
        assert metrics.availability < 1.0
        assert any(r.attempts >= 1 and r.packets_delivered > 0 for r in result.records)

    def test_blackout_without_ladder_consumes_no_rng(self):
        """A dark-channel attempt must not touch the main stream.

        Two runs with the same engine seed — one fault free, one fully
        blacked out from t=0 — must produce delivered packets drawn from an
        identical generator state once the blackout ends (here: never; the
        comparison is that the blackout run drops everything determinately
        without sampling)."""
        requests = _traffic(50)
        horizon = max(r.arrival_time_s for r in requests) + 1.0
        failures = _all_channels(
            lambda: ChannelFaultTimeline(NW, blackout_windows_s=[(0.0, horizon)])
        )
        a = NetworkSimulator(seed=5, failures=failures, max_retries=1).run(iter(requests))
        b = NetworkSimulator(seed=5, failures=failures, max_retries=1).run(iter(requests))
        assert a.records == b.records
        assert all(r.packets_delivered == 0 for r in a.records)
        # Loss of light is detected even without residual-error sampling.
        assert all(r.packets_with_residual_errors == 0 for r in a.records)

    def test_fault_free_model_matches_legacy_run_exactly(self):
        """An all-healthy fault model must not perturb the simulation."""
        requests = _traffic()
        legacy = NetworkSimulator(seed=7).run(iter(requests))
        faultfree = NetworkSimulator(
            seed=7, failures=_all_channels(lambda: ChannelFaultTimeline(NW))
        ).run(iter(requests))
        assert legacy.records == faultfree.records

    def test_degraded_run_is_deterministic(self):
        requests = _traffic()
        horizon = max(r.arrival_time_s for r in requests)
        model = make_fault_model(
            "mixed", DEFAULT_CONFIG.num_onis, NW, seed=11, horizon_s=horizon
        )
        ladder = DegradationLadder(margins=margin_levels(8.0), num_wavelengths=NW)

        def run_once():
            return NetworkSimulator(
                seed=13,
                failures=model,
                degradation=ladder,
                retry_backoff_s=horizon / 100,
                transfer_timeout_s=horizon,
            ).run(iter(requests))

        assert run_once().records == run_once().records
