"""The full optical interconnect: one MWSR channel per reader ONI.

Aggregates the per-channel models into network-level figures: total optical
and electrical power for a given coding configuration, bisection/aggregate
bandwidth, and per-channel worst-case laser requirements.  This is the level
at which the paper's "22 W saved over the whole interconnect" claim lives.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List

from ..config import DEFAULT_CONFIG, PaperConfig
from ..exceptions import ConfigurationError
from ..link.design import OpticalLinkDesigner
from ..power.channel import ChannelPowerBreakdown, channel_power_breakdown
from ..interfaces.synthesis import synthesize_interfaces
from .mwsr import MWSRChannel
from .oni import OpticalNetworkInterface
from .topology import RingTopology

__all__ = ["OpticalNetwork"]


@dataclass
class OpticalNetwork:
    """All ONIs and MWSR channels of the nanophotonic interconnect."""

    config: PaperConfig = field(default_factory=lambda: DEFAULT_CONFIG)

    def __post_init__(self) -> None:
        self.topology = RingTopology.from_config(self.config)
        self.onis: List[OpticalNetworkInterface] = [
            OpticalNetworkInterface(index=i, config=self.config)
            for i in range(self.config.num_onis)
        ]
        self.channels: Dict[int, MWSRChannel] = {
            reader: MWSRChannel(reader=reader, config=self.config, topology=self.topology)
            for reader in range(self.config.num_onis)
        }
        self._designer = OpticalLinkDesigner(config=self.config)
        self._synthesis = synthesize_interfaces(config=self.config)

    # ------------------------------------------------------------------ structure
    @property
    def num_onis(self) -> int:
        """Number of ONIs (and therefore of MWSR channels)."""
        return self.config.num_onis

    def channel_for_reader(self, reader: int) -> MWSRChannel:
        """The MWSR channel read by a given ONI."""
        if reader not in self.channels:
            raise ConfigurationError(f"no channel with reader {reader}")
        return self.channels[reader]

    # ------------------------------------------------------------------ figures
    @property
    def aggregate_raw_bandwidth_bits_per_s(self) -> float:
        """Sum of the raw optical bandwidth of every channel."""
        return sum(channel.raw_bandwidth_bits_per_s for channel in self.channels.values())

    def channel_power(self, code, target_ber: float) -> ChannelPowerBreakdown:
        """Per-wavelength power breakdown of one channel under a coding scheme."""
        return channel_power_breakdown(
            code,
            target_ber,
            config=self.config,
            designer=self._designer,
            synthesis=self._synthesis,
        )

    def total_power_w(self, code, target_ber: float) -> float:
        """Total interconnect power when every channel runs the same scheme."""
        per_wavelength = self.channel_power(code, target_ber).total_power_w
        per_channel = (
            per_wavelength
            * self.config.num_wavelengths
            * self.config.num_waveguides_per_channel
        )
        return per_channel * self.num_onis

    @property
    def total_interface_area_um2(self) -> float:
        """Total electrical interface area across every ONI."""
        return sum(oni.interface_area_um2 for oni in self.onis)

    def power_saving_w(self, baseline_code, improved_code, target_ber: float) -> float:
        """Interconnect-level power saving of one scheme over another."""
        return self.total_power_w(baseline_code, target_ber) - self.total_power_w(
            improved_code, target_ber
        )
