"""Crash tests of the sweep orchestrator: dead workers, hangs, corruption.

These tests register the :mod:`faultinject` grid and drive
``run_experiment`` through worker SIGKILLs, hung shards and damaged
checkpoints, asserting both recovery (the merged result is byte-identical
to an undisturbed serial run) and bounded failure (the sweep aborts with
:class:`~repro.exceptions.ShardExecutionError` naming the shard).

The kill/hang scenarios need the pooled path (a serial kill would take
pytest down with it) and the ``fork`` start method (workers must inherit
the test-registered experiment), so the module is skipped where fork is
unavailable.
"""

from __future__ import annotations

import json
import multiprocessing
import os

import pytest

import faultinject
from repro.exceptions import ShardExecutionError
from repro.experiments.orchestrator import checkpoint_path, run_experiment

pytestmark = pytest.mark.skipif(
    "fork" not in multiprocessing.get_all_start_methods(),
    reason="fault injection requires fork workers (registry inheritance)",
)

faultinject.install()


def _serial_expectation(tmp_path):
    """The undisturbed result every recovery scenario must reproduce."""
    clean = tmp_path / "clean"
    clean.mkdir()
    return run_experiment(
        faultinject.EXPERIMENT, options={"work_dir": str(clean), "num_shards": 4}
    )


class TestWorkerDeath:
    def test_killed_worker_is_retried_and_result_identical(self, tmp_path):
        expected = _serial_expectation(tmp_path)
        work = tmp_path / "kill"
        work.mkdir()
        options = {"work_dir": str(work), "num_shards": 4, "kill_once": [1]}
        text, rows = run_experiment(
            faultinject.EXPERIMENT, options=options, jobs=4, max_shard_retries=4
        )
        assert (text, rows) == expected
        counts = faultinject.attempt_counts(str(work))
        # The killed shard ran at least twice; every shard ran at least once.
        assert counts[1] >= 2
        assert all(counts.get(index, 0) >= 1 for index in range(4))

    def test_repeatedly_killed_shard_exhausts_retries(self, tmp_path):
        work = tmp_path / "killalways"
        work.mkdir()
        options = {"work_dir": str(work), "num_shards": 4, "kill_always": [2]}
        with pytest.raises(ShardExecutionError) as excinfo:
            run_experiment(
                faultinject.EXPERIMENT, options=options, jobs=4, max_shard_retries=1
            )
        # The error names the failing shard's parameters (satellite
        # requirement: actionable context, not a bare pool traceback).
        assert "params" in str(excinfo.value)
        assert excinfo.value.experiment == faultinject.EXPERIMENT

    def test_deterministic_shard_exception_aborts_with_params(self, tmp_path):
        work = tmp_path / "raise"
        work.mkdir()
        options = {"work_dir": str(work), "num_shards": 4, "raise_on": [3]}
        with pytest.raises(ShardExecutionError) as excinfo:
            run_experiment(faultinject.EXPERIMENT, options=options, jobs=2)
        error = excinfo.value
        assert error.index == 3
        assert error.params["index"] == 3
        assert "ValueError" in str(error)
        # Deterministic failures must not be retried: one execution only.
        assert faultinject.attempt_counts(str(work))[3] == 1


class TestHangs:
    def test_hung_worker_is_timed_out_and_retried(self, tmp_path):
        expected = _serial_expectation(tmp_path)
        work = tmp_path / "hang"
        work.mkdir()
        options = {
            "work_dir": str(work),
            "num_shards": 4,
            "hang_once": [0],
            "hang_seconds": 60.0,
        }
        text, rows = run_experiment(
            faultinject.EXPERIMENT,
            options=options,
            jobs=4,
            shard_timeout_s=1.0,
            max_shard_retries=2,
        )
        assert (text, rows) == expected
        assert faultinject.attempt_counts(str(work))[0] >= 2


class TestCheckpointCorruption:
    def test_truncated_checkpoint_is_quarantined_and_salvaged(self, tmp_path):
        expected = _serial_expectation(tmp_path)
        work = tmp_path / "ckptwork"
        work.mkdir()
        ckpt = tmp_path / "ckpt"
        options = {"work_dir": str(work), "num_shards": 4}
        run_experiment(faultinject.EXPERIMENT, options=options, checkpoint_dir=str(ckpt))
        path = checkpoint_path(str(ckpt), faultinject.EXPERIMENT)
        lines = open(path, encoding="utf-8").read().splitlines()
        assert json.loads(lines[0])["kind"] == "header"
        assert len(lines) == 5  # header + 4 shard records
        # Truncate mid-record, as a crash mid-write (non-atomic fs) would.
        with open(path, "w", encoding="utf-8") as handle:
            handle.write("\n".join(lines[:3] + [lines[3][: len(lines[3]) // 2]]))
        for marker in work.iterdir():
            marker.unlink()  # salvage run must recompute only the lost shards
        result = run_experiment(
            faultinject.EXPERIMENT,
            options=options,
            checkpoint_dir=str(ckpt),
            resume=True,
        )
        assert result == expected
        assert os.path.exists(path + ".corrupt")
        counts = faultinject.attempt_counts(str(work))
        # Shards 0 and 1 survived the truncation; 2 and 3 were recomputed.
        assert set(counts) == {2, 3}

    def test_binary_garbage_checkpoint_is_quarantined(self, tmp_path):
        expected = _serial_expectation(tmp_path)
        work = tmp_path / "garbagework"
        work.mkdir()
        ckpt = tmp_path / "garbage"
        ckpt.mkdir()
        options = {"work_dir": str(work), "num_shards": 4}
        path = checkpoint_path(str(ckpt), faultinject.EXPERIMENT)
        with open(path, "w", encoding="utf-8") as handle:
            handle.write("\x00\x01 not json at all {{{")
        result = run_experiment(
            faultinject.EXPERIMENT,
            options=options,
            checkpoint_dir=str(ckpt),
            resume=True,
        )
        assert result == expected
        assert os.path.exists(path + ".corrupt")
        # The fresh checkpoint written after quarantine is complete and valid.
        lines = open(path, encoding="utf-8").read().splitlines()
        assert len(lines) == 5
