"""Unit tests for ``SweepProgress.eta_s`` and the cooperative cancel hook.

The ETA edge cases are the PR's satellite fix: a sweep with zero freshly
completed shards (everything resumed) must report "no estimate" instead of
dividing by zero, a finished sweep reports ``0.0``, and retried shards are
charged to the denominator so heavy retrying does not inflate the
per-shard estimate.

The cancel hook is what the CLI's signal handlers and the service
supervisor's drain path use: it is polled between shards, the final
checkpoint lands *before* :class:`~repro.exceptions.SweepCancelled` is
raised, and a ``--resume`` rerun completes from exactly those shards.
"""

from __future__ import annotations

import pytest

from repro.exceptions import SweepCancelled
from repro.experiments.orchestrator import (
    GridFunctions,
    SweepProgress,
    checkpoint_path,
    register_experiment,
    run_experiment,
)

EXPERIMENT = "cancelgrid"


def _progress(**overrides) -> SweepProgress:
    defaults = dict(
        experiment="x",
        shards_total=10,
        shards_done=4,
        shards_resumed=0,
        events_processed=0,
        elapsed_s=8.0,
        retries=0,
    )
    defaults.update(overrides)
    return SweepProgress(**defaults)


class TestEtaEstimate:
    def test_plain_estimate(self):
        # 4 fresh shards in 8s -> 2 s/shard -> 6 remaining = 12s
        assert _progress().eta_s == pytest.approx(12.0)

    def test_no_estimate_before_any_shard(self):
        assert _progress(shards_done=0, elapsed_s=3.0).eta_s is None

    def test_no_estimate_when_everything_was_resumed(self):
        # the pre-fix code divided by zero fresh shards here
        assert _progress(shards_done=4, shards_resumed=4).eta_s is None

    def test_zero_elapsed_gives_no_estimate(self):
        assert _progress(elapsed_s=0.0).eta_s is None

    def test_finished_sweep_is_zero_even_if_fully_resumed(self):
        done = _progress(shards_done=10, shards_resumed=10, elapsed_s=0.0)
        assert done.eta_s == 0.0

    def test_retries_count_as_attempts(self):
        # 4 fresh + 4 failed attempts consumed the same 8s -> 1 s/attempt,
        # not 2 s/shard: retrying must not inflate the projection
        skewed = _progress(retries=4)
        assert skewed.eta_s == pytest.approx(6.0)
        assert skewed.eta_s < _progress().eta_s

    def test_resumed_shards_do_not_dilute_the_rate(self):
        # 2 of the 4 done shards were replayed from a checkpoint in ~0s;
        # the 8s of work bought only 2 fresh shards -> 4 s/shard
        resumed = _progress(shards_resumed=2)
        assert resumed.eta_s == pytest.approx(24.0)

    def test_negative_retries_are_clamped(self):
        assert _progress(retries=-3).eta_s == _progress().eta_s


def _shards(config, options):
    options = options or {}
    return [{"index": index} for index in range(int(options.get("num_shards", 4)))]


def _run_shard(params, config):
    return {"index": params["index"], "value": params["index"] * 3}


def _merge(payloads, config, options):
    rows = [dict(payload) for payload in payloads]
    return "total: " + str(sum(row["value"] for row in rows)), rows


register_experiment(EXPERIMENT, GridFunctions(_shards, _run_shard, _merge), replace=True)


class TestCancelHook:
    def test_immediate_cancel_raises_before_any_shard(self, tmp_path):
        with pytest.raises(SweepCancelled) as excinfo:
            run_experiment(EXPERIMENT, cancel=lambda: True)
        assert excinfo.value.experiment == EXPERIMENT
        assert excinfo.value.shards_done == 0
        assert excinfo.value.shards_total == 4

    def test_cancel_mid_sweep_finalizes_the_checkpoint(self, tmp_path):
        seen: list[int] = []

        def progress(update: SweepProgress) -> None:
            seen.append(update.shards_done)

        with pytest.raises(SweepCancelled) as excinfo:
            run_experiment(
                EXPERIMENT,
                checkpoint_dir=str(tmp_path),
                progress=progress,
                cancel=lambda: bool(seen) and seen[-1] >= 1,  # after 1 shard
            )
        assert excinfo.value.shards_done == 1
        # the shard that landed is on disk, resumable
        assert checkpoint_path(str(tmp_path), EXPERIMENT)

        text, rows = run_experiment(
            EXPERIMENT, checkpoint_dir=str(tmp_path), resume=True
        )
        assert text == run_experiment(EXPERIMENT)[0]
        assert [row["value"] for row in rows] == [0, 3, 6, 9]

    def test_pooled_sweep_cancels_between_waits(self, tmp_path):
        with pytest.raises(SweepCancelled):
            run_experiment(
                EXPERIMENT,
                jobs=2,
                checkpoint_dir=str(tmp_path),
                cancel=lambda: True,
            )

    def test_no_cancel_hook_changes_nothing(self):
        assert run_experiment(EXPERIMENT) == run_experiment(EXPERIMENT, cancel=None)
