"""Inline suppression pragmas.

Two forms, both comments so they survive formatters (examples written
without the leading hash so this docstring does not parse as a pragma):

* ``repro-lint: disable=RPR103`` — suppress the listed codes (comma
  separated, or ``all``) on *this line only*;
* ``repro-lint: disable-file=RPR301`` — suppress the listed codes for
  the whole file (conventionally placed near the top).

Scanning is line-based, so a pragma-shaped comment inside a string
literal counts too — keep literal pragma text out of docstrings.

Unknown text after ``repro-lint:`` is an error finding (``RPR002``) rather
than a silent no-op — a typoed pragma that quietly suppressed nothing is
exactly the kind of rot this linter exists to prevent.
"""

from __future__ import annotations

import re
from dataclasses import dataclass, field
from typing import Dict, List, Set

from .findings import Finding

__all__ = ["PragmaTable", "parse_pragmas", "BAD_PRAGMA_CODE"]

#: Emitted for a malformed ``repro-lint:`` comment.
BAD_PRAGMA_CODE = "RPR002"

_PRAGMA_RE = re.compile(r"#\s*repro-lint:\s*(?P<body>[^#]*)")
_DIRECTIVE_RE = re.compile(
    r"^(?P<kind>disable|disable-file)\s*=\s*(?P<codes>[A-Za-z0-9,\s]+)$"
)


@dataclass
class PragmaTable:
    """Parsed suppressions for one file."""

    line_disables: Dict[int, Set[str]] = field(default_factory=dict)
    file_disables: Set[str] = field(default_factory=set)
    #: Malformed pragmas, reported as findings by the engine.
    errors: List[Finding] = field(default_factory=list)

    def suppresses(self, code: str, line: int) -> bool:
        if "all" in self.file_disables or code in self.file_disables:
            return True
        at_line = self.line_disables.get(line, ())
        return "all" in at_line or code in at_line


def parse_pragmas(lines: List[str], path: str) -> PragmaTable:
    """Scan source ``lines`` (1-indexed reporting) for pragma comments."""
    table = PragmaTable()
    for number, text in enumerate(lines, start=1):
        pragma = _PRAGMA_RE.search(text)
        if pragma is None:
            continue
        directive = _DIRECTIVE_RE.match(pragma.group("body").strip())
        if directive is None:
            table.errors.append(
                Finding(
                    path=path,
                    line=number,
                    col=pragma.start() + 1,
                    code=BAD_PRAGMA_CODE,
                    message=(
                        "malformed repro-lint pragma (expected "
                        "'disable=CODE[,CODE...]' or 'disable-file=CODE[,CODE...]')"
                    ),
                    snippet=text.strip(),
                )
            )
            continue
        codes = {
            chunk.strip() for chunk in directive.group("codes").split(",") if chunk.strip()
        }
        if directive.group("kind") == "disable":
            table.line_disables.setdefault(number, set()).update(codes)
        else:
            table.file_disables.update(codes)
    return table
