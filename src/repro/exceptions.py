"""Exception hierarchy for the :mod:`repro` package.

All library-specific errors derive from :class:`ReproError` so callers can
catch a single base class.  Specific subclasses are raised where the failure
mode is meaningful to a user of the public API (e.g. a laser that cannot
deliver the requested optical power, or a BER target that no configuration
can reach).
"""

from __future__ import annotations

__all__ = [
    "ReproError",
    "ConfigurationError",
    "CodingError",
    "CodewordLengthError",
    "DecodingFailure",
    "LaserPowerExceededError",
    "InfeasibleDesignError",
    "ArbitrationError",
    "SimulationError",
    "ShardExecutionError",
    "SweepCancelled",
    "ServiceError",
    "QueueFullError",
    "JobNotFoundError",
]


class ReproError(Exception):
    """Base class for all errors raised by the :mod:`repro` library."""


class ConfigurationError(ReproError):
    """An object was constructed or configured with invalid parameters."""


class CodingError(ReproError):
    """Base class for errors in the ECC substrate."""


class CodewordLengthError(CodingError):
    """A message or codeword does not have the length required by the code."""


class DecodingFailure(CodingError):
    """A decoder detected an error pattern it cannot correct.

    Raised only by decoders operating in ``strict`` mode; by default the
    decoders return their best-effort estimate together with a flag.
    """


class LaserPowerExceededError(ReproError):
    """The required optical output power exceeds the laser's maximum rating.

    This is the error behind the paper's observation that a BER of 1e-12 is
    not reachable without ECC: the required ``OP_laser`` exceeds the maximum
    deliverable optical power (700 uW for the PCM-VCSEL considered).
    """

    def __init__(self, required_w: float, maximum_w: float, message: str | None = None):
        self.required_w = float(required_w)
        self.maximum_w = float(maximum_w)
        if message is None:
            message = (
                f"required laser output power {required_w * 1e6:.1f} uW exceeds the "
                f"maximum deliverable optical power {maximum_w * 1e6:.1f} uW"
            )
        super().__init__(message)


class InfeasibleDesignError(ReproError):
    """No operating point satisfies the requested constraints."""


class ArbitrationError(ReproError):
    """A channel-access request could not be satisfied."""


class SimulationError(ReproError):
    """An event handler failed mid-drain in the discrete-event engine.

    Wraps the original error with the failing event's kind, simulation time
    and position in the event stream, so a crash deep inside a controller or
    sampler still says *which* event broke the run.  The event queue itself
    is never left torn: the failing event was already popped, and no handler
    runs after the error surfaces.
    """


class ShardExecutionError(ReproError):
    """A sweep shard failed (worker crash, hang or an in-shard exception).

    Carries the experiment name, the shard's grid index and its parameter
    dict so a pooled sweep's failure names the exact grid point that died
    instead of an anonymous worker traceback.
    """

    def __init__(self, experiment: str, index: int, params: dict, reason: str):
        self.experiment = str(experiment)
        self.index = int(index)
        self.params = dict(params)
        super().__init__(
            f"shard {index} of experiment {experiment!r} failed ({reason}); "
            f"shard params: {self.params!r}"
        )


class SweepCancelled(ReproError):
    """A sweep stopped early because its cancellation hook fired.

    Raised by the orchestrator *after* the final checkpoint write, so every
    shard that completed before the cancellation is recoverable with
    ``resume=True``.  Carries the progress made so callers (the CLI's
    signal handlers, the service supervisor's drain path) can print an
    actionable resume hint.
    """

    def __init__(self, experiment: str, shards_done: int, shards_total: int):
        self.experiment = str(experiment)
        self.shards_done = int(shards_done)
        self.shards_total = int(shards_total)
        super().__init__(
            f"sweep {experiment!r} cancelled after {shards_done}/{shards_total} shards"
        )


class ServiceError(ReproError):
    """Base class for errors raised by the simulation service layer."""


class QueueFullError(ServiceError):
    """The durable job queue is at capacity; the submission was rejected.

    ``retry_after_s`` is the server's backpressure hint (the HTTP layer
    turns it into a ``Retry-After`` header on the 429 response).
    """

    def __init__(self, depth: int, max_depth: int, retry_after_s: float):
        self.depth = int(depth)
        self.max_depth = int(max_depth)
        self.retry_after_s = float(retry_after_s)
        super().__init__(
            f"job queue is full ({depth}/{max_depth}); retry in {retry_after_s:g}s"
        )


class JobNotFoundError(ServiceError):
    """No job with the requested id exists in the queue."""

    def __init__(self, job_id: str):
        self.job_id = str(job_id)
        super().__init__(f"no job {job_id!r}")
