"""Simulation-as-a-service layer: durable queue, supervised workers, HTTP API.

This package turns the one-shot ``repro-experiments`` CLI into a
long-running daemon (ROADMAP item 2).  Its parts compose the robustness
machinery built in earlier PRs into a service whose every failure mode has
a defined recovery path:

* :mod:`~repro.service.models` — the job record and its state machine
  (``queued -> running -> done/failed/dead``);
* :mod:`~repro.service.store` — content-addressed, checksummed results
  store (corrupt artefacts quarantined to ``*.corrupt``) that doubles as
  the persistent tier of :meth:`repro.link.design.OpticalLinkDesigner.design_point`;
* :mod:`~repro.service.queue` — durable job queue (one atomic, checksummed
  JSON file per job) with idempotent fingerprint-keyed submission and
  crash recovery on startup;
* :mod:`~repro.service.supervisor` — runs jobs through
  :func:`repro.experiments.orchestrator.run_experiment` in forked child
  workers with per-job timeouts, bounded exponential-backoff retries and a
  poison-job circuit breaker;
* :mod:`~repro.service.routes` / :mod:`~repro.service.server` — the
  stdlib ``ThreadingHTTPServer`` JSON API with admission control, a
  load-shedding ladder, ``/healthz``/``/readyz`` and clean SIGTERM drain.

Quick in-process start (the ``repro-serve`` console script wraps the same
object)::

    from repro.service import SimulationService

    service = SimulationService(data_dir="/tmp/repro-service", port=0)
    service.start()          # background threads; service.port is bound
    ...
    service.stop()           # drain: finalize checkpoints, persist queue
"""

from .models import Job, JobState
from .queue import DurableJobQueue
from .server import ServiceConfig, SimulationService
from .store import PersistentDesignCache, ResultsStore
from .supervisor import Supervisor

__all__ = [
    "Job",
    "JobState",
    "DurableJobQueue",
    "PersistentDesignCache",
    "ResultsStore",
    "ServiceConfig",
    "SimulationService",
    "Supervisor",
]
