"""Monte-Carlo estimation of post-decoding bit error rates.

The analytic expressions in :mod:`repro.coding.theory` are approximations;
this module provides the empirical counterpart used by the validation
examples and the property-based tests: push random messages through
encode → binary-symmetric channel → decode and count residual bit errors.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

import numpy as np

from ..exceptions import ConfigurationError

__all__ = ["MonteCarloBERResult", "estimate_ber_monte_carlo"]


@dataclass(frozen=True)
class MonteCarloBERResult:
    """Outcome of a Monte-Carlo BER estimation run."""

    code_name: str
    raw_ber: float
    estimated_ber: float
    bits_simulated: int
    bit_errors: int
    blocks_simulated: int
    block_errors: int

    @property
    def block_error_rate(self) -> float:
        """Fraction of blocks with at least one residual error."""
        if self.blocks_simulated == 0:
            return 0.0
        return self.block_errors / self.blocks_simulated

    def confidence_interval(self, z: float = 1.96) -> tuple[float, float]:
        """Normal-approximation confidence interval on the estimated BER."""
        if self.bits_simulated == 0:
            return (0.0, 0.0)
        p = self.estimated_ber
        half_width = z * math.sqrt(max(p * (1.0 - p), 1e-300) / self.bits_simulated)
        return (max(0.0, p - half_width), min(1.0, p + half_width))


def estimate_ber_monte_carlo(
    code,
    raw_ber: float,
    *,
    num_blocks: int = 2000,
    rng: np.random.Generator | None = None,
) -> MonteCarloBERResult:
    """Estimate the post-decoding BER of ``code`` on a BSC.

    Parameters
    ----------
    code:
        Any object following the coding API (``n``, ``k``, ``encode_block``,
        ``decode_block``), including :class:`~repro.coding.uncoded.UncodedScheme`.
    raw_ber:
        Crossover probability of the binary symmetric channel.
    num_blocks:
        Number of independent codewords to simulate.
    rng:
        Optional numpy random generator for reproducibility.
    """
    if not 0.0 <= raw_ber <= 1.0:
        raise ConfigurationError("raw BER must lie in [0, 1]")
    if num_blocks < 1:
        raise ConfigurationError("at least one block must be simulated")
    generator = rng if rng is not None else np.random.default_rng()

    bit_errors = 0
    block_errors = 0
    k = code.k
    n = code.n
    for _ in range(num_blocks):
        message = generator.integers(0, 2, size=k, dtype=np.uint8)
        codeword = code.encode_block(message)
        flips = (generator.random(n) < raw_ber).astype(np.uint8)
        received = codeword ^ flips
        decoded = code.decode_block(received).message_bits
        errors = int(np.count_nonzero(decoded != message))
        bit_errors += errors
        if errors:
            block_errors += 1
    bits = num_blocks * k
    return MonteCarloBERResult(
        code_name=getattr(code, "name", type(code).__name__),
        raw_ber=float(raw_ber),
        estimated_ber=bit_errors / bits,
        bits_simulated=bits,
        bit_errors=bit_errors,
        blocks_simulated=num_blocks,
        block_errors=block_errors,
    )
