"""Experiment ``figure5``: laser power vs target BER per coding scheme.

Figure 5 sweeps the target BER from 1e-3 to 1e-12 for the 12-ONI,
16-wavelength, 6-cm MWSR channel and plots the per-wavelength electrical
laser power for transmissions without ECC, with H(71,64) and with H(7,4).
The uncoded curve is the highest everywhere and becomes infeasible at
BER = 1e-12 (the required optical power exceeds the 700 uW laser rating);
the coded curves stay feasible across the whole range.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Sequence

import numpy as np

from ..coding.registry import paper_code_set
from ..config import DEFAULT_CONFIG, PaperConfig
from ..link.design import LinkDesignPoint, OpticalLinkDesigner
from .paperdata import Comparison, PAPER_LASER_POWER_MW_AT_1E11

__all__ = ["Figure5Result", "run_figure5", "DEFAULT_BER_GRID"]

#: The BER axis of Figure 5 (decades from 1e-3 down to 1e-12).
DEFAULT_BER_GRID: tuple[float, ...] = tuple(10.0 ** (-e) for e in range(3, 13))


@dataclass
class Figure5Result:
    """Laser power curves per coding scheme over the BER grid."""

    target_bers: tuple[float, ...]
    series: Dict[str, List[LinkDesignPoint]]
    comparisons: List[Comparison] = field(default_factory=list)

    def laser_power_mw(self, code_name: str) -> np.ndarray:
        """Laser power curve of one scheme, in mW (NaN where infeasible)."""
        points = self.series[code_name]
        return np.array(
            [p.laser_power_mw if p.feasible else np.nan for p in points]
        )

    def feasibility(self, code_name: str) -> np.ndarray:
        """Boolean feasibility of one scheme over the BER grid."""
        return np.array([p.feasible for p in self.series[code_name]])

    def point_at(self, code_name: str, target_ber: float) -> LinkDesignPoint:
        """The design point of one scheme at one BER target."""
        for point in self.series[code_name]:
            if np.isclose(point.target_ber, target_ber, rtol=1e-9, atol=0.0):
                return point
        raise KeyError(f"BER {target_ber:g} not in the sweep grid")

    def render_text(self) -> str:
        """Text table of the laser powers over the BER grid."""
        names = list(self.series)
        header = "BER        " + "".join(f"{name:>14s}" for name in names)
        lines = ["Figure 5 - P_laser vs target BER (mW per wavelength)", header]
        for i, ber in enumerate(self.target_bers):
            cells = []
            for name in names:
                point = self.series[name][i]
                cells.append(
                    f"{point.laser_power_mw:14.2f}" if point.feasible else f"{'infeasible':>14s}"
                )
            lines.append(f"{ber:10.0e} " + "".join(cells))
        lines.append("")
        lines.append("Comparison against the paper at BER = 1e-11:")
        lines.extend(c.render() for c in self.comparisons)
        return "\n".join(lines)


def run_figure5(
    config: PaperConfig = DEFAULT_CONFIG,
    *,
    target_bers: Sequence[float] = DEFAULT_BER_GRID,
    codes: Sequence | None = None,
) -> Figure5Result:
    """Sweep the BER targets for every coding scheme of the paper."""
    designer = OpticalLinkDesigner(config=config)
    code_list = list(codes) if codes is not None else paper_code_set(config.ip_bus_width_bits)
    series: Dict[str, List[LinkDesignPoint]] = {}
    for code in code_list:
        series[code.name] = designer.sweep_ber(code, list(target_bers))

    comparisons: List[Comparison] = []
    for name, reference in PAPER_LASER_POWER_MW_AT_1E11.items():
        if name not in series:
            continue
        try:
            measured = next(
                p.laser_power_mw
                for p in series[name]
                if np.isclose(p.target_ber, 1e-11, rtol=1e-9, atol=0.0)
            )
        except StopIteration:
            continue
        comparisons.append(
            Comparison(
                quantity=f"P_laser at BER 1e-11 [{name}]",
                measured=measured,
                reference=reference,
                unit="mW",
            )
        )
    return Figure5Result(
        target_bers=tuple(target_bers), series=series, comparisons=comparisons
    )
