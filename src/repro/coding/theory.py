"""Analytic post-decoding error rates of block codes over a BSC.

The paper's link-design procedure is entirely analytic: given a target
post-decoding BER it computes the raw channel error probability ``p`` the
code can tolerate (Eq. 2 for Hamming codes), converts ``p`` to the required
SNR (Eq. 3) and finally to a laser output power (Eq. 4).  This module holds
the first step of that chain:

* :func:`hamming_output_ber` — the paper's Eq. 2,
  ``BER = p - p (1 - p)^{n-1}``.
* :func:`coded_ber_bounded_distance` — the standard bounded-distance
  post-decoding bit-error-rate approximation for a t-error-correcting code,
  used for SECDED/BCH and as a cross-check of Eq. 2.
* :func:`raw_ber_for_target_output_ber` — numeric inversion: the largest raw
  channel BER a code tolerates while meeting a post-decoding target.
* :func:`block_error_probability` — probability a whole block leaves the
  decoder with residual errors (more than ``t`` channel errors), the
  frame-error rate the packet-level network simulator samples from.
* :func:`undetected_error_probability_upper_bound` — detection-oriented
  bound used by the retransmission policies.

All probabilities are per-bit unless stated otherwise.
"""

from __future__ import annotations

import math
from typing import Protocol

import numpy as np
from scipy.optimize import brentq
from scipy.special import comb
from scipy.stats import binom

from ..exceptions import ConfigurationError

__all__ = [
    "code_rate",
    "hamming_output_ber",
    "coded_ber_bounded_distance",
    "output_ber",
    "raw_ber_for_target_output_ber",
    "block_error_probability",
    "undetected_error_probability_upper_bound",
]


class _CodeLike(Protocol):
    """Minimal protocol required from code objects by the analytic helpers."""

    n: int
    k: int
    correctable_errors: int
    code_rate: float


def code_rate(n: int, k: int) -> float:
    """Code rate Rc = k / n with validation."""
    if not 0 < k <= n:
        raise ConfigurationError("code rate requires 0 < k <= n")
    return k / n


def hamming_output_ber(raw_ber: float | np.ndarray, block_length: int) -> float | np.ndarray:
    """Post-decoding BER of a Hamming code, paper Eq. 2.

    ``BER = p - p (1 - p)^{n-1}`` where ``p`` is the raw channel bit error
    probability and ``n`` the block length.  The expression is the
    probability that a given bit is in error *and* at least one other bit of
    its block is also in error (in which case single-error correction fails
    to repair it); it tends to ``(n-1) p^2`` for small ``p``.
    """
    p = np.asarray(raw_ber, dtype=float)
    if np.any(p < 0) or np.any(p > 1):
        raise ConfigurationError("raw BER must lie in [0, 1]")
    if block_length < 2:
        raise ConfigurationError("block length must be at least 2")
    result = p - p * (1.0 - p) ** (block_length - 1)
    if np.isscalar(raw_ber):
        return float(result)
    return result


def coded_ber_bounded_distance(
    raw_ber: float, block_length: int, correctable_errors: int
) -> float:
    """Post-decoding bit error rate of a bounded-distance decoder.

    Standard approximation for a ``t``-error-correcting (n, k) block code on
    a BSC with crossover probability ``p``:

    ``P_bit ~= (1/n) * sum_{i=t+1}^{n} min(i + t, n) * C(n, i) p^i (1-p)^{n-i}``

    i.e. when ``i > t`` errors occur the decoder may add up to ``t`` extra
    erroneous bits while "correcting" towards the wrong codeword.  For
    ``t = 1`` (Hamming) this closely tracks the paper's Eq. 2; for ``t = 0``
    it degenerates to the raw BER.
    """
    if not 0.0 <= raw_ber <= 1.0:
        raise ConfigurationError("raw BER must lie in [0, 1]")
    if block_length < 1:
        raise ConfigurationError("block length must be positive")
    if correctable_errors < 0:
        raise ConfigurationError("correctable_errors must be non-negative")
    if correctable_errors == 0:
        return float(raw_ber)
    p = float(raw_ber)
    if p == 0.0:
        return 0.0
    n = block_length
    t = correctable_errors
    total = 0.0
    for i in range(t + 1, n + 1):
        weight = min(i + t, n)
        total += weight * comb(n, i, exact=True) * (p ** i) * ((1.0 - p) ** (n - i))
    return float(total / n)


def output_ber(code: _CodeLike, raw_ber: float) -> float:
    """Post-decoding BER of ``code`` on a BSC with crossover ``raw_ber``.

    Dispatches to the paper's Hamming expression for single-error-correcting
    codes and to the bounded-distance approximation otherwise; uncoded
    schemes (t = 0) pass the raw BER through unchanged.
    """
    t = int(getattr(code, "correctable_errors", 0))
    if t == 0:
        return float(raw_ber)
    if t == 1:
        return float(hamming_output_ber(raw_ber, code.n))
    return coded_ber_bounded_distance(raw_ber, code.n, t)


def raw_ber_for_target_output_ber(code: _CodeLike, target_ber: float) -> float:
    """Largest raw channel BER for which ``code`` still meets ``target_ber``.

    This is the inversion of Eq. 2 required by the paper's Section IV-D:
    "Calculating the SNR from BER when considering Hamming codes requires to
    invert Equations 3 and 2."  For uncoded transmissions the answer is the
    target itself; for coded transmissions a bracketed root search is used on
    the monotonic (for small p) post-decoding BER expression.
    """
    if not 0.0 < target_ber < 0.5:
        raise ConfigurationError("target BER must lie in (0, 0.5)")
    t = int(getattr(code, "correctable_errors", 0))
    if t == 0:
        return float(target_ber)

    def objective(p: float) -> float:
        return output_ber(code, p) - target_ber

    # The post-decoding BER is monotonically increasing in p on (0, ~0.5/n);
    # bracket the root between the target itself (coded is never worse than
    # uncoded in this regime) and a generous upper limit.
    low = target_ber
    high = 0.4
    if objective(low) > 0:
        # Extremely high targets where coding gives no benefit.
        return float(target_ber)
    # Shrink the upper bracket until the objective is positive there.
    while objective(high) < 0 and high < 0.499:
        high = min(0.499, high * 1.2)
    root = brentq(objective, low, high, xtol=1e-18, rtol=1e-12)
    return float(root)


def block_error_probability(
    raw_ber: float, block_length: int, correctable_errors: int
) -> float:
    """Probability a decoded block still carries errors (frame error rate).

    A ``t``-error-correcting bounded-distance decoder repairs every pattern
    of at most ``t`` channel errors, so a block fails exactly when more than
    ``t`` of its ``n`` bits flip:

    ``P_block = 1 - sum_{i=0}^{t} C(n, i) p^i (1-p)^{n-i}``

    For perfect codes (Hamming) this is exact: any heavier pattern is
    "corrected" towards a wrong codeword whose message part necessarily
    differs from the transmitted one.  For ``t = 0`` it degenerates to the
    probability of at least one raw error.  This is the per-block failure
    probability the probabilistic mode of :mod:`repro.netsim` samples packet
    outcomes from.

    Evaluated through the binomial survival function rather than
    ``1 - head-sum``, so deep operating points (raw BERs of 1e-7 and below,
    where the tail drops under double-precision epsilon of 1) keep their
    relative accuracy instead of cancelling to zero.
    """
    if not 0.0 <= raw_ber <= 1.0:
        raise ConfigurationError("raw BER must lie in [0, 1]")
    if block_length < 1:
        raise ConfigurationError("block length must be positive")
    if correctable_errors < 0:
        raise ConfigurationError("correctable_errors must be non-negative")
    p = float(raw_ber)
    if p == 0.0:
        return 0.0
    n = block_length
    t = min(correctable_errors, n)
    return float(min(1.0, max(0.0, binom.sf(t, n, p))))


def undetected_error_probability_upper_bound(
    raw_ber: float, block_length: int, minimum_distance: int
) -> float:
    """Upper bound on the probability a block error escapes detection.

    A linear code detects every error pattern of weight below its minimum
    distance, so the undetected-error probability is at most the probability
    of ``dmin`` or more errors in a block:

    ``P_undetected <= sum_{i=dmin}^{n} C(n, i) p^i (1-p)^{n-i}``

    Used by the retransmission-based policies in :mod:`repro.manager`.
    """
    if not 0.0 <= raw_ber <= 1.0:
        raise ConfigurationError("raw BER must lie in [0, 1]")
    if minimum_distance < 1 or minimum_distance > block_length:
        raise ConfigurationError("minimum distance must lie in [1, n]")
    p = float(raw_ber)
    if p == 0.0:
        return 0.0
    total = 0.0
    for i in range(minimum_distance, block_length + 1):
        total += comb(block_length, i, exact=True) * (p ** i) * ((1.0 - p) ** (block_length - i))
    return float(min(1.0, total))
