"""Report helpers shared by the experiment runner.

Experiments return structured result objects; this module turns them into
text sections and CSV rows so the runner can both print to the console and
write machine-readable artefacts next to EXPERIMENTS.md.
"""

from __future__ import annotations

import csv
import io
from typing import Iterable, Mapping, Sequence

__all__ = ["rows_to_csv", "section", "render_comparisons"]


def section(title: str, body: str) -> str:
    """Wrap a body of text in an underlined section header."""
    underline = "=" * len(title)
    return f"{title}\n{underline}\n{body}\n"


def rows_to_csv(rows: Sequence[Mapping[str, object]]) -> str:
    """Serialise a list of homogeneous dictionaries to CSV text."""
    if not rows:
        return ""
    fieldnames = list(rows[0].keys())
    buffer = io.StringIO()
    writer = csv.DictWriter(buffer, fieldnames=fieldnames)
    writer.writeheader()
    for row in rows:
        writer.writerow(row)
    return buffer.getvalue()


def render_comparisons(comparisons: Iterable) -> str:
    """Render a list of Comparison objects, one per line."""
    return "\n".join(comparison.render() for comparison in comparisons)
