"""Content-addressed, checksummed results store with quarantine-on-corruption.

Two persistence tiers live here:

* :class:`ResultsStore` — one atomic JSON document per sweep fingerprint
  holding a finished job's merged result.  Every read verifies a SHA-256
  checksum over the canonical payload; a damaged artefact (truncation, bit
  flip, garbage) is quarantined to ``<name>.corrupt`` and reported as a
  miss, so the job layer redoes the work instead of serving a lie — the
  same deal checkpoint v2 made in the orchestrator.
* :class:`PersistentDesignCache` — the shared persistent tier of
  :meth:`repro.link.design.OpticalLinkDesigner.design_point`.  An
  append-only JSON-lines file of checksummed ``(key, point)`` records:
  appends are cheap (design points are solved at millisecond cost but
  requested millions of times), every record carries its own checksum, and
  a damaged line costs only that record — the loader salvages the rest and
  quarantines the damaged file.
"""

from __future__ import annotations

import hashlib
import json
import logging
import os
import re
import tempfile
import threading
from dataclasses import asdict
from typing import Any, Dict, Tuple

__all__ = ["ResultsStore", "PersistentDesignCache", "quarantine"]

logger = logging.getLogger("repro.service.store")

_FINGERPRINT_RE = re.compile(r"^[0-9a-f]{8,64}$")


def _payload_checksum(payload: Any) -> str:
    canonical = json.dumps(payload, sort_keys=True)
    return hashlib.sha256(canonical.encode("utf-8")).hexdigest()


def _atomic_write_json(path: str, document: dict) -> None:
    directory = os.path.dirname(path) or "."
    os.makedirs(directory, exist_ok=True)
    descriptor, temp_path = tempfile.mkstemp(
        dir=directory, prefix=f".{os.path.basename(path)}.", suffix=".tmp"
    )
    try:
        with os.fdopen(descriptor, "w", encoding="utf-8") as handle:
            json.dump(document, handle)
            handle.write("\n")
        os.replace(temp_path, path)
    except BaseException:
        if os.path.exists(temp_path):
            os.unlink(temp_path)
        raise


def quarantine(path: str) -> str:
    """Move a damaged artefact aside (``*.corrupt``); never re-read it.

    Returns the quarantine path.  Like the orchestrator's checkpoint
    quarantine, the rename keeps the evidence for a post-mortem while
    guaranteeing the next write starts from a fresh file.
    """
    quarantined = path + ".corrupt"
    try:
        os.replace(path, quarantined)
        logger.warning("quarantined damaged artefact %s -> %s", path, quarantined)
    except OSError:
        logger.warning("could not quarantine damaged artefact %s", path)
    return quarantined


class ResultsStore:
    """Fingerprint-keyed result documents, verified on every read."""

    def __init__(self, root: str):
        self.root = root
        os.makedirs(root, exist_ok=True)
        self._lock = threading.Lock()

    def path(self, fingerprint: str) -> str:
        if not _FINGERPRINT_RE.match(fingerprint):
            raise ValueError(f"not a result fingerprint: {fingerprint!r}")
        return os.path.join(self.root, f"{fingerprint}.json")

    def put(self, fingerprint: str, payload: Any) -> str:
        """Atomically persist ``payload`` under ``fingerprint``; returns path."""
        path = self.path(fingerprint)
        document = {
            "kind": "result",
            "fingerprint": fingerprint,
            "payload": payload,
            "checksum": _payload_checksum(payload),
        }
        with self._lock:
            _atomic_write_json(path, document)
        return path

    def get(self, fingerprint: str) -> Any | None:
        """The stored payload, or ``None`` on miss *or damage* (quarantined)."""
        path = self.path(fingerprint)
        try:
            with open(path, "r", encoding="utf-8") as handle:
                document = json.load(handle)
        except OSError:
            return None
        except ValueError:
            with self._lock:
                quarantine(path)
            return None
        if (
            not isinstance(document, dict)
            or document.get("kind") != "result"
            or document.get("fingerprint") != fingerprint
            or document.get("checksum") != _payload_checksum(document.get("payload"))
        ):
            with self._lock:
                quarantine(path)
            return None
        return document["payload"]

    def __contains__(self, fingerprint: str) -> bool:
        return self.get(fingerprint) is not None


class PersistentDesignCache:
    """Durable ``(code, target BER) -> LinkDesignPoint`` cache.

    Implements the pluggable-cache protocol of
    :class:`repro.link.design.OpticalLinkDesigner` (``load``/``store``).
    The in-memory dict fronts the file, so a process pays the disk read
    once at construction; ``store`` appends one checksummed JSON line
    (point solves are rare — cache misses only — so append cost is
    irrelevant next to the brentq chain it memoizes).
    """

    def __init__(self, path: str):
        self.path = path
        self._lock = threading.Lock()
        self._points: Dict[Tuple, dict] = {}
        self._load()

    @staticmethod
    def _key_fields(key: Tuple) -> list:
        name, n, k, target_ber = key
        return [str(name), int(n), int(k), float(target_ber)]

    def _load(self) -> None:
        try:
            with open(self.path, "r", encoding="utf-8") as handle:
                lines = handle.read().splitlines()
        except OSError:
            return
        damaged = False
        salvaged: Dict[Tuple, dict] = {}
        for line in lines:
            if not line.strip():
                continue
            try:
                record = json.loads(line)
            except ValueError:
                damaged = True
                continue
            if (
                not isinstance(record, dict)
                or record.get("kind") != "design-point"
                or not isinstance(record.get("key"), list)
                or len(record["key"]) != 4
                or record.get("checksum")
                != _payload_checksum({"key": record.get("key"), "point": record.get("point")})
            ):
                damaged = True
                continue
            name, n, k, target = record["key"]
            salvaged[(str(name), int(n), int(k), float(target))] = record["point"]
        with self._lock:
            self._points = salvaged
        if damaged:
            quarantine(self.path)
            # Rewrite the surviving records so the file is clean again.
            self._rewrite()

    def _rewrite(self) -> None:
        directory = os.path.dirname(self.path) or "."
        os.makedirs(directory, exist_ok=True)
        with self._lock:
            lines = [self._record_line(key, self._points[key]) for key in sorted(self._points)]
        descriptor, temp_path = tempfile.mkstemp(
            dir=directory, prefix=f".{os.path.basename(self.path)}.", suffix=".tmp"
        )
        try:
            with os.fdopen(descriptor, "w", encoding="utf-8") as handle:
                for line in lines:
                    handle.write(line)
            os.replace(temp_path, self.path)
        except BaseException:
            if os.path.exists(temp_path):
                os.unlink(temp_path)
            raise

    def _record_line(self, key: Tuple, point: dict) -> str:
        fields = self._key_fields(key)
        record = {
            "kind": "design-point",
            "key": fields,
            "point": point,
            "checksum": _payload_checksum({"key": fields, "point": point}),
        }
        return json.dumps(record) + "\n"

    def __len__(self) -> int:
        with self._lock:
            return len(self._points)

    # ------------------------------------------------- designer cache protocol
    def load(self, key: Tuple):
        """The cached design point for ``key``, or ``None`` on miss.

        Imports lazily to keep ``repro.service.store`` importable without
        pulling the photonics stack in (the queue/store tier has no
        designer dependency).
        """
        with self._lock:
            stored = self._points.get((str(key[0]), int(key[1]), int(key[2]), float(key[3])))
        if stored is None:
            return None
        from ..link.design import LinkDesignPoint

        try:
            return LinkDesignPoint(**stored)
        except TypeError:
            # Schema drift (a field was added/renamed): treat as a miss and
            # let the solver repopulate the entry.
            return None

    def store(self, key: Tuple, point) -> None:
        """Append one solved point (no-op if the key is already present)."""
        normalized = (str(key[0]), int(key[1]), int(key[2]), float(key[3]))
        with self._lock:
            if normalized in self._points:
                return
            payload = asdict(point)
            self._points[normalized] = payload
            directory = os.path.dirname(self.path) or "."
            os.makedirs(directory, exist_ok=True)
            with open(self.path, "a", encoding="utf-8") as handle:
                handle.write(self._record_line(normalized, payload))
