"""Pragmas, baselines and configuration — the suppression machinery.

These are the pieces that make the linter adoptable on a living codebase:
inline pragmas for justified one-offs, a checked-in baseline for
grandfathered findings, and per-path configuration for whole subtrees.
Each has a failure mode (typo'd pragma, stale baseline, unknown config
key) that must fail loudly rather than silently disable a rule.
"""

from __future__ import annotations

import json
import textwrap

import pytest

from repro.analysis import (
    Baseline,
    DEFAULT_CONFIG,
    LintConfig,
    lint_source,
    load_config,
    normalize_path,
    write_baseline,
)
from repro.exceptions import ConfigurationError

SIM_PATH = "repro/netsim/fixture.py"

#: Two RPR101 violations on separate lines.
DIRTY = "import random\na = random.random()\nb = random.random()\n"


def findings_for(source: str, path: str = SIM_PATH, config: LintConfig = DEFAULT_CONFIG):
    return lint_source(textwrap.dedent(source), path=path, config=config)


class TestPragmas:
    def test_line_pragma_suppresses_only_its_line(self):
        source = (
            "import random\n"
            "a = random.random()  # repro-lint: disable=RPR101\n"
            "b = random.random()\n"
        )
        findings = findings_for(source)
        assert [finding.code for finding in findings] == ["RPR101"]
        assert findings[0].line == 3

    def test_line_pragma_takes_multiple_codes(self):
        source = (
            "import random, time\n"
            "a = random.random()  # repro-lint: disable=RPR101,RPR103\n"
            "t = time.time()  # repro-lint: disable=RPR103\n"
        )
        assert findings_for(source) == []

    def test_file_pragma_suppresses_everywhere(self):
        source = "# repro-lint: disable-file=RPR101\n" + DIRTY
        assert findings_for(source) == []

    def test_pragma_does_not_suppress_other_codes(self):
        source = "import time\nt = time.time()  # repro-lint: disable=RPR101\n"
        assert [finding.code for finding in findings_for(source)] == ["RPR103"]

    def test_malformed_pragma_is_its_own_finding(self):
        source = "x = 1  # repro-lint: disalbe=RPR101\n"
        findings = findings_for(source)
        assert [finding.code for finding in findings] == ["RPR002"]

    def test_syntax_error_reports_rpr001(self):
        findings = findings_for("def broken(:\n")
        assert [finding.code for finding in findings] == ["RPR001"]


class TestBaseline:
    def test_roundtrip_suppresses_grandfathered_findings(self, tmp_path):
        findings = findings_for(DIRTY)
        assert len(findings) == 2
        baseline_path = tmp_path / "baseline.json"
        count = write_baseline(str(baseline_path), findings)
        # The two offending lines differ, so each gets its own entry.
        assert count == 2
        baseline = Baseline.load(str(baseline_path))
        kept, suppressed, stale = baseline.apply(findings_for(DIRTY))
        assert kept == []
        assert len(suppressed) == 2
        assert stale == []

    def test_new_findings_are_not_absorbed(self, tmp_path):
        baseline_path = tmp_path / "baseline.json"
        write_baseline(str(baseline_path), findings_for(DIRTY))
        worse = DIRTY + "c = random.random()\nimport time\nt = time.time()\n"
        kept, suppressed, _ = Baseline.load(str(baseline_path)).apply(findings_for(worse))
        # The two grandfathered lines are absorbed; the new line and the
        # new wall-clock read stay live findings.
        assert len(suppressed) == 2
        assert sorted(finding.code for finding in kept) == ["RPR101", "RPR103"]

    def test_fixed_findings_become_stale_entries(self, tmp_path):
        baseline_path = tmp_path / "baseline.json"
        write_baseline(str(baseline_path), findings_for(DIRTY))
        kept, suppressed, stale = Baseline.load(str(baseline_path)).apply([])
        assert kept == [] and suppressed == []
        assert len(stale) == 2
        assert all(code == "RPR101" for _path, code, _sha in stale)

    def test_editing_the_offending_line_invalidates_the_entry(self, tmp_path):
        baseline_path = tmp_path / "baseline.json"
        write_baseline(str(baseline_path), findings_for(DIRTY))
        edited = DIRTY.replace("a = random.random()", "a = 2 * random.random()")
        kept, suppressed, stale = Baseline.load(str(baseline_path)).apply(
            findings_for(edited)
        )
        # The edited line hashes differently: it resurfaces as a live
        # finding while the old entry for it goes stale.
        assert len(kept) == 1 and len(suppressed) == 1
        assert len(stale) == 1

    def test_malformed_baseline_is_a_configuration_error(self, tmp_path):
        bad = tmp_path / "baseline.json"
        bad.write_text(json.dumps({"version": 99}), encoding="utf-8")
        with pytest.raises(ConfigurationError):
            Baseline.load(str(bad))

    def test_unreadable_baseline_is_a_configuration_error(self, tmp_path):
        with pytest.raises(ConfigurationError):
            Baseline.load(str(tmp_path / "missing.json"))


class TestConfig:
    def test_per_path_disable(self):
        config = LintConfig(per_path_disable={"repro/netsim/*": ("RPR101",)})
        assert findings_for(DIRTY, config=config) == []
        assert len(findings_for(DIRTY, path="repro/coding/fixture.py", config=config)) == 2

    def test_select_runs_only_named_codes(self):
        config = LintConfig(select=("RPR103",))
        source = DIRTY + "import time\nt = time.time()\n"
        assert [finding.code for finding in findings_for(source, config=config)] == ["RPR103"]

    def test_ignore_drops_named_codes(self):
        config = LintConfig(ignore=("RPR101",))
        assert findings_for(DIRTY, config=config) == []

    def test_load_config_overrides_fields(self, tmp_path):
        config_path = tmp_path / "lint.json"
        config_path.write_text(
            json.dumps({"deterministic_paths": ["repro/custom/*"]}), encoding="utf-8"
        )
        config = load_config(str(config_path))
        assert config.deterministic_paths == ("repro/custom/*",)
        # Wall clock now allowed on netsim paths, forbidden on the custom one.
        wall = "import time\nt = time.time()\n"
        assert findings_for(wall, config=config) == []
        assert len(findings_for(wall, path="repro/custom/run.py", config=config)) == 1

    def test_load_config_rejects_unknown_keys(self, tmp_path):
        config_path = tmp_path / "lint.json"
        config_path.write_text(json.dumps({"determinstic_paths": []}), encoding="utf-8")
        with pytest.raises(ConfigurationError, match="unknown lint config key"):
            load_config(str(config_path))

    def test_normalize_path_cuts_at_repro_package(self):
        assert normalize_path("src/repro/service/queue.py") == "repro/service/queue.py"
        assert normalize_path("/abs/checkout/src/repro/netsim/core.py") == (
            "repro/netsim/core.py"
        )
        assert normalize_path("./tools/script.py") == "tools/script.py"
