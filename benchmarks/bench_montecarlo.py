"""Scalar vs. batch Monte-Carlo throughput micro-benchmark.

Times the pre-batching per-block reference loop against the vectorized
batch engine of :func:`repro.coding.montecarlo.estimate_ber_monte_carlo`
for the paper's H(71,64) workhorse code, reports throughput in blocks per
second, and writes the comparison to ``benchmarks/BENCH_montecarlo.json``
so the ``BENCH_*.json`` trajectory has a perf baseline.

The scalar loop is timed over a subsample of blocks (its throughput is
independent of the total) and both throughputs are compared at the
``num_blocks=20000`` workload.  Run either way::

    PYTHONPATH=src python benchmarks/bench_montecarlo.py
    pytest benchmarks/bench_montecarlo.py -q
"""

from __future__ import annotations

import os
import sys
import time

import numpy as np

_SRC = os.path.join(os.path.dirname(os.path.dirname(os.path.abspath(__file__))), "src")
if _SRC not in sys.path:
    sys.path.insert(0, _SRC)
_HERE = os.path.dirname(os.path.abspath(__file__))
if _HERE not in sys.path:
    sys.path.insert(0, _HERE)

import benchlib  # noqa: E402
from repro.coding.hamming import ShortenedHammingCode  # noqa: E402
from repro.coding.montecarlo import estimate_ber_monte_carlo  # noqa: E402

RAW_BER = 1e-3
NUM_BLOCKS = 20000
SCALAR_SAMPLE_BLOCKS = 2000
_JSON_PATH = os.path.join(_HERE, "BENCH_montecarlo.json")


def scalar_monte_carlo(code, raw_ber: float, num_blocks: int, rng) -> tuple[int, int]:
    """The pre-batching per-block Monte-Carlo loop (reference baseline)."""
    bit_errors = 0
    block_errors = 0
    for _ in range(num_blocks):
        message = rng.integers(0, 2, size=code.k, dtype=np.uint8)
        codeword = code.encode_block(message)
        flips = (rng.random(code.n) < raw_ber).astype(np.uint8)
        decoded = code._decode_block_reference(codeword ^ flips).message_bits
        errors = int(np.count_nonzero(decoded != message))
        bit_errors += errors
        block_errors += errors > 0
    return bit_errors, block_errors


def run_benchmark(
    num_blocks: int = NUM_BLOCKS, scalar_blocks: int = SCALAR_SAMPLE_BLOCKS
) -> dict:
    """Time both engines and return the throughput comparison as a dict."""
    code = ShortenedHammingCode(64)
    # Warm the lazily-built syndrome tables so neither side pays them.
    estimate_ber_monte_carlo(code, RAW_BER, num_blocks=64, rng=np.random.default_rng(0))
    scalar_monte_carlo(code, RAW_BER, 64, np.random.default_rng(0))

    start = time.perf_counter()
    batch_result = estimate_ber_monte_carlo(
        code, RAW_BER, num_blocks=num_blocks, rng=np.random.default_rng(1)
    )
    batch_seconds = time.perf_counter() - start

    start = time.perf_counter()
    scalar_monte_carlo(code, RAW_BER, scalar_blocks, np.random.default_rng(1))
    scalar_seconds = time.perf_counter() - start

    batch_throughput = num_blocks / batch_seconds
    scalar_throughput = scalar_blocks / scalar_seconds
    return {
        "code": code.name,
        "raw_ber": RAW_BER,
        "num_blocks": num_blocks,
        "scalar_sample_blocks": scalar_blocks,
        "scalar_blocks_per_sec": scalar_throughput,
        "batch_blocks_per_sec": batch_throughput,
        "scalar_seconds": scalar_seconds,
        "batch_seconds": batch_seconds,
        "speedup": batch_throughput / scalar_throughput,
        "estimated_ber": batch_result.estimated_ber,
    }


def test_batch_is_at_least_ten_times_faster():
    """Acceptance gate: >= 10x blocks/sec over the scalar loop at 20000 blocks."""
    results = run_benchmark()
    assert results["speedup"] >= 10.0, results


def main(argv: list[str] | None = None) -> int:
    args = benchlib.parse_args(argv, description=__doc__)
    results = run_benchmark()
    benchlib.write_bench_json(_JSON_PATH, "montecarlo", results)
    if args.history:
        benchlib.append_history(
            args.history,
            "montecarlo",
            {
                "batch_blocks_per_sec": results["batch_blocks_per_sec"],
                "scalar_blocks_per_sec": results["scalar_blocks_per_sec"],
                "speedup": results["speedup"],
            },
        )
    print(
        f"{results['code']} @ raw BER {results['raw_ber']:g}: "
        f"scalar {results['scalar_blocks_per_sec']:,.0f} blocks/s, "
        f"batch {results['batch_blocks_per_sec']:,.0f} blocks/s "
        f"({results['speedup']:.1f}x)"
    )
    print(f"[wrote {_JSON_PATH}]")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
