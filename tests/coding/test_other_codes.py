"""Tests for the uncoded scheme, SECDED, parity and repetition codes."""

from __future__ import annotations

import numpy as np
import pytest

from repro.coding.extended_hamming import ExtendedHammingCode
from repro.coding.parity import SingleParityCheckCode
from repro.coding.repetition import RepetitionCode
from repro.coding.uncoded import UncodedScheme
from repro.exceptions import CodewordLengthError, ConfigurationError, DecodingFailure


class TestUncodedScheme:
    def test_metadata(self):
        scheme = UncodedScheme(64)
        assert scheme.n == scheme.k == 64
        assert scheme.num_parity_bits == 0
        assert scheme.code_rate == 1.0
        assert scheme.communication_time_overhead == 1.0
        assert scheme.correctable_errors == 0
        assert scheme.name == "w/o ECC"

    def test_encode_decode_is_identity(self, rng):
        scheme = UncodedScheme(8)
        bits = rng.integers(0, 2, size=8, dtype=np.uint8)
        assert np.array_equal(scheme.encode_block(bits), bits)
        assert np.array_equal(scheme.decode_block(bits).message_bits, bits)

    def test_stream_round_trip(self, rng):
        scheme = UncodedScheme(16)
        bits = rng.integers(0, 2, size=64, dtype=np.uint8)
        assert np.array_equal(scheme.decode(scheme.encode(bits)), bits)

    def test_never_detects_errors(self, rng):
        scheme = UncodedScheme(8)
        result = scheme.decode_block(rng.integers(0, 2, size=8, dtype=np.uint8))
        assert not result.detected_error
        assert not result.corrected

    def test_length_validation(self):
        scheme = UncodedScheme(8)
        with pytest.raises(CodewordLengthError):
            scheme.encode_block(np.zeros(7, dtype=np.uint8))
        with pytest.raises(CodewordLengthError):
            scheme.encode(np.zeros(9, dtype=np.uint8))

    def test_rejects_non_positive_length(self):
        with pytest.raises(ConfigurationError):
            UncodedScheme(0)


class TestExtendedHamming:
    def test_secded_72_64_parameters(self):
        code = ExtendedHammingCode(64)
        assert (code.n, code.k) == (72, 64)
        assert code.minimum_distance == 4
        assert code.correctable_errors == 1
        assert code.detectable_errors == 3

    def test_secded_8_4_from_full_hamming(self):
        code = ExtendedHammingCode(4)
        assert (code.n, code.k) == (8, 4)
        assert code.inner_code.name == "H(7,4)"

    def test_every_codeword_has_even_weight(self):
        code = ExtendedHammingCode(4)
        for codeword in code.codewords():
            assert int(codeword.code_bits.sum()) % 2 == 0

    def test_corrects_single_errors(self, rng):
        code = ExtendedHammingCode(16)
        message = rng.integers(0, 2, size=16, dtype=np.uint8)
        codeword = code.encode_block(message)
        for position in range(code.n):
            corrupted = codeword.copy()
            corrupted[position] ^= 1
            result = code.decode_block(corrupted)
            assert result.corrected
            assert np.array_equal(result.message_bits, message)

    def test_detects_double_errors_without_miscorrecting(self, rng):
        code = ExtendedHammingCode(16)
        message = rng.integers(0, 2, size=16, dtype=np.uint8)
        codeword = code.encode_block(message)
        corrupted = codeword.copy()
        corrupted[1] ^= 1
        corrupted[9] ^= 1
        result = code.decode_block(corrupted)
        assert result.detected_error
        assert result.failure
        assert not result.corrected

    def test_double_error_raises_in_strict_mode(self, rng):
        code = ExtendedHammingCode(8)
        codeword = code.encode_block(np.zeros(8, dtype=np.uint8))
        corrupted = codeword.copy()
        corrupted[0] ^= 1
        corrupted[3] ^= 1
        with pytest.raises(DecodingFailure):
            code.decode_block(corrupted, strict=True)

    def test_parity_bit_only_error_is_corrected(self):
        code = ExtendedHammingCode(8)
        codeword = code.encode_block(np.ones(8, dtype=np.uint8))
        corrupted = codeword.copy()
        corrupted[-1] ^= 1
        result = code.decode_block(corrupted)
        assert result.corrected
        assert np.array_equal(result.corrected_codeword, codeword)


class TestSingleParityCheck:
    def test_parameters(self):
        code = SingleParityCheckCode(8)
        assert (code.n, code.k) == (9, 8)
        assert code.minimum_distance == 2
        assert code.correctable_errors == 0

    def test_codewords_have_even_weight(self):
        code = SingleParityCheckCode(4)
        for codeword in code.codewords():
            assert int(codeword.code_bits.sum()) % 2 == 0

    def test_detects_single_error_but_cannot_correct(self, rng):
        code = SingleParityCheckCode(8)
        codeword = code.encode_block(rng.integers(0, 2, size=8, dtype=np.uint8))
        corrupted = codeword.copy()
        corrupted[2] ^= 1
        result = code.decode_block(corrupted)
        assert result.detected_error
        assert result.failure
        assert not result.corrected

    def test_misses_double_errors(self, rng):
        code = SingleParityCheckCode(8)
        codeword = code.encode_block(rng.integers(0, 2, size=8, dtype=np.uint8))
        corrupted = codeword.copy()
        corrupted[1] ^= 1
        corrupted[4] ^= 1
        result = code.decode_block(corrupted)
        assert not result.detected_error


class TestRepetitionCode:
    def test_parameters(self):
        code = RepetitionCode(5)
        assert (code.n, code.k) == (5, 1)
        assert code.minimum_distance == 5
        assert code.correctable_errors == 2

    def test_rejects_even_or_small_factors(self):
        with pytest.raises(ConfigurationError):
            RepetitionCode(4)
        with pytest.raises(ConfigurationError):
            RepetitionCode(1)

    def test_majority_vote_corrects_up_to_t_errors(self):
        code = RepetitionCode(5)
        codeword = code.encode_block([1])
        corrupted = codeword.copy()
        corrupted[0] ^= 1
        corrupted[3] ^= 1
        result = code.decode_block(corrupted)
        assert result.corrected
        assert result.message_bits[0] == 1

    def test_majority_vote_fails_beyond_t_errors(self):
        code = RepetitionCode(3)
        codeword = code.encode_block([0])
        corrupted = codeword.copy()
        corrupted[0] ^= 1
        corrupted[1] ^= 1
        result = code.decode_block(corrupted)
        assert result.message_bits[0] == 1  # majority is now wrong

    def test_stream_round_trip(self, rng):
        code = RepetitionCode(3)
        bits = rng.integers(0, 2, size=10, dtype=np.uint8)
        assert np.array_equal(code.decode(code.encode(bits)), bits)
