"""The lint finding record and its serialisations.

One :class:`Finding` is one rule violation at one source location.  The
``snippet`` field carries the stripped source line the finding points at:
it is what the baseline mechanism hashes (so findings survive pure line
renumbering — an edit above a grandfathered violation does not un-baseline
it) and what the text reporter prints for context.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass, field
from typing import Any, Dict

__all__ = ["Finding", "snippet_digest"]


def snippet_digest(snippet: str) -> str:
    """Stable content hash of one finding's source line (baseline key)."""
    return hashlib.sha256(snippet.strip().encode("utf-8")).hexdigest()[:16]


@dataclass(frozen=True, order=True)
class Finding:
    """One rule violation: where, which rule, and why."""

    path: str
    line: int
    col: int
    code: str
    message: str
    #: The stripped source line (content-addressed by the baseline).
    snippet: str = field(default="", compare=False)

    @property
    def location(self) -> str:
        return f"{self.path}:{self.line}:{self.col}"

    @property
    def baseline_key(self) -> tuple:
        """What the baseline matches on — deliberately line-number-free."""
        return (self.path, self.code, snippet_digest(self.snippet))

    def to_dict(self) -> Dict[str, Any]:
        """JSON-reporter shape (``file``/``line``/``col`` for annotations)."""
        return {
            "file": self.path,
            "line": self.line,
            "col": self.col,
            "code": self.code,
            "message": self.message,
            "snippet": self.snippet,
        }
