"""``repro-lint`` — the project's invariant linter, as a console script.

Exit codes are stable for CI and scripting:

* ``0`` — clean (every finding fixed, pragma'd or baselined);
* ``1`` — findings (or, under ``--strict``, stale baseline entries);
* ``2`` — usage / configuration errors (bad flags, unreadable config).

``--json`` emits one machine-readable document (``file``/``line``/``col``
per finding) for CI annotations; the default text reporter prints
``path:line:col: CODE message`` plus the offending line.
"""

from __future__ import annotations

import argparse
import json
import os
import sys
from dataclasses import replace
from typing import List, Optional

from ..exceptions import ConfigurationError
from .baseline import Baseline, write_baseline
from .config import DEFAULT_CONFIG, load_config
from .engine import LintRun, lint_paths
from .registry import all_rules

__all__ = ["main", "build_parser"]

#: Baseline filename picked up automatically from the working directory.
DEFAULT_BASELINE = ".repro-lint-baseline.json"


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro-lint",
        description="AST-based invariant linter: determinism, lock discipline, hot-path hygiene.",
    )
    parser.add_argument(
        "paths", nargs="*", default=["src"], help="files or directories to lint (default: src)"
    )
    parser.add_argument("--json", action="store_true", help="machine-readable JSON report")
    parser.add_argument(
        "--strict",
        action="store_true",
        help="also fail on stale baseline entries (the baseline may only shrink)",
    )
    parser.add_argument(
        "--baseline",
        metavar="FILE",
        default=None,
        help=f"baseline of grandfathered findings (default: {DEFAULT_BASELINE} if present)",
    )
    parser.add_argument(
        "--no-baseline", action="store_true", help="ignore any baseline file"
    )
    parser.add_argument(
        "--write-baseline",
        action="store_true",
        help="write the current findings as the new baseline and exit 0",
    )
    parser.add_argument("--config", metavar="FILE", default=None, help="JSON config overrides")
    parser.add_argument(
        "--select", metavar="CODES", default=None, help="comma-separated codes to run exclusively"
    )
    parser.add_argument(
        "--ignore", metavar="CODES", default=None, help="comma-separated codes to skip"
    )
    parser.add_argument(
        "--list-rules", action="store_true", help="print the rule catalogue and exit"
    )
    return parser


def _codes(text: str) -> tuple:
    return tuple(chunk.strip().upper() for chunk in text.split(",") if chunk.strip())


def _report_text(run: LintRun, stream) -> None:
    for finding in run.findings:
        print(f"{finding.location}: {finding.code} {finding.message}", file=stream)
        if finding.snippet:
            print(f"    {finding.snippet}", file=stream)
    for path, code, _sha in run.stale_baseline:
        print(f"{path}: stale baseline entry for {code} (finding no longer occurs)", file=stream)
    summary = (
        f"{len(run.findings)} finding(s) in {run.files_checked} file(s)"
        f" ({len(run.suppressed)} baselined, {len(run.stale_baseline)} stale baseline entr(y/ies))"
    )
    print(summary, file=stream)


def _report_json(run: LintRun, stream) -> None:
    document = {
        "version": 1,
        "files_checked": run.files_checked,
        "findings": [finding.to_dict() for finding in run.findings],
        "baselined": len(run.suppressed),
        "stale_baseline": [
            {"path": path, "code": code, "snippet_sha": sha}
            for path, code, sha in run.stale_baseline
        ],
    }
    json.dump(document, stream, indent=2, sort_keys=True)
    stream.write("\n")


def main(argv: Optional[List[str]] = None) -> int:
    parser = build_parser()
    args = parser.parse_args(argv)

    if args.list_rules:
        for lint_rule in all_rules():
            scope = f" [scope: {lint_rule.scope}]" if lint_rule.scope else ""
            print(f"{lint_rule.code}  {lint_rule.name}: {lint_rule.summary}{scope}")
        return 0

    config = DEFAULT_CONFIG
    try:
        if args.config:
            config = load_config(args.config, base=config)
        if args.select:
            config = replace(config, select=_codes(args.select))
        if args.ignore:
            config = replace(config, ignore=_codes(args.ignore))

        baseline = None
        baseline_path = args.baseline
        if baseline_path is None and os.path.exists(DEFAULT_BASELINE):
            baseline_path = DEFAULT_BASELINE
        if baseline_path and not args.no_baseline and not args.write_baseline:
            if not os.path.exists(baseline_path) and args.baseline:
                parser.error(f"baseline file {baseline_path!r} does not exist")
            baseline = Baseline.load(baseline_path)

        missing = [path for path in args.paths if not os.path.exists(path)]
        if missing:
            parser.error(f"no such path(s): {', '.join(missing)}")
        run = lint_paths(args.paths, config=config, baseline=baseline)
    except ConfigurationError as error:
        print(f"repro-lint: {error}", file=sys.stderr)
        return 2

    if args.write_baseline:
        target = args.baseline or DEFAULT_BASELINE
        count = write_baseline(target, run.findings)
        print(f"wrote {count} baseline entr(y/ies) to {target}")
        return 0

    reporter = _report_json if args.json else _report_text
    reporter(run, sys.stdout)
    if run.findings:
        return 1
    if args.strict and run.stale_baseline:
        return 1
    return 0


if __name__ == "__main__":  # pragma: no cover - exercised via CLI tests
    sys.exit(main())
