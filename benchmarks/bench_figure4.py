"""Benchmark ``figure4``: laser electrical power vs emitted optical power.

Paper artefact: Figure 4 (P_laser against OP_laser at 25% chip activity:
linear below ~500 uW, super-linear above, 700 uW maximum deliverable).
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.experiments.figure4 import run_figure4


def test_bench_figure4_curve(benchmark):
    """Time the Figure 4 sweep and validate the curve's shape."""
    result = benchmark(run_figure4)
    assert np.all(np.diff(result.laser_power_mw) > 0)
    assert result.linearity_error_below_500uw < 0.25
    assert result.max_deliverable_uw == pytest.approx(700.0)
    # The laser costs on the order of 10-18 mW near its maximum output,
    # matching the magnitude the paper plots.
    idx_700 = int(np.argmin(np.abs(result.optical_power_uw - 700.0)))
    assert 10.0 < result.laser_power_mw[idx_700] < 20.0


def test_bench_laser_model_single_point(benchmark, paper_config):
    """Micro-benchmark of a single laser operating-point solve."""
    from repro.photonics.laser import VCSELModel

    laser = VCSELModel.from_config(paper_config)
    point = benchmark(laser.operating_point, 400e-6)
    assert point.electrical_power_w > 0
