"""Job records and the service's job-lifecycle state machine.

A job is one sweep request — an experiment name plus its grid options —
identified by the :class:`~repro.experiments.orchestrator.ExperimentGrid`
fingerprint of the sweep it describes.  Identity by fingerprint is what
makes submission idempotent: two requests for the same grid are the same
job, and a finished job's result is a cache hit for every later identical
request.

States and legal transitions::

    queued ──► running ──► done          (result verified in the store)
      ▲           │
      │           ├──────► failed       (attempt failed; retry scheduled)
      │           │           │
      │           │           ▼
      └───────────┴──────── queued      (backoff elapsed, re-claimed)
                  │
                  └──────► dead         (retry budget exhausted, poison
                                         grid, or cancelled)

``done`` and ``dead`` are terminal.  A ``done`` job whose stored result is
later found damaged is resubmittable: the queue re-queues it instead of
serving the quarantined artefact.
"""

from __future__ import annotations

import hashlib
import json
import time
from dataclasses import asdict, dataclass, field, replace
from typing import Any, Dict

from ..exceptions import ConfigurationError

__all__ = ["Job", "JobState", "job_checksum"]


class JobState:
    """The five job states (plain strings so records stay JSON-friendly)."""

    QUEUED = "queued"
    RUNNING = "running"
    DONE = "done"
    FAILED = "failed"
    DEAD = "dead"

    ALL = (QUEUED, RUNNING, DONE, FAILED, DEAD)
    #: States a job can legally move to from each state.  Terminal states
    #: allow re-queueing only through :meth:`Job.requeued` (damage
    #: recovery), which is deliberately not in this table.
    TRANSITIONS = {
        QUEUED: (RUNNING, DEAD),
        RUNNING: (DONE, FAILED, DEAD, QUEUED),  # QUEUED: drain/crash recovery
        FAILED: (QUEUED, DEAD),
        DONE: (),
        DEAD: (),
    }


@dataclass(frozen=True)
class Job:
    """One durable job record (immutable; transitions produce new records)."""

    job_id: str
    experiment: str
    options: dict | None
    state: str = JobState.QUEUED
    #: Worker parallelism the sweep runs at inside its child process.
    jobs: int = 1
    #: Attempts charged so far (transient failures: crash, timeout, kill).
    attempts: int = 0
    #: Deterministic failures observed (the circuit breaker's counter).
    deterministic_failures: int = 0
    #: Monotonic-clock deadline (``time.monotonic`` domain) before which
    #: the queue must not hand the job out again (exponential-backoff
    #: retries).  ``0.0`` means immediately.  Only meaningful inside the
    #: process that wrote it — queue recovery resets it on restart.
    not_before_s: float = 0.0
    created_s: float = field(default_factory=time.time)
    updated_s: float = field(default_factory=time.time)
    error: str | None = None

    def transitioned(
        self,
        state: str,
        *,
        error: str | None = None,
        not_before_s: float | None = None,
        charge_attempt: bool = False,
        charge_deterministic: bool = False,
    ) -> "Job":
        """A copy of the job moved to ``state`` (legality-checked)."""
        if state not in JobState.ALL:
            raise ConfigurationError(f"unknown job state {state!r}")
        if state not in JobState.TRANSITIONS[self.state]:
            raise ConfigurationError(
                f"job {self.job_id} cannot move {self.state} -> {state}"
            )
        return replace(
            self,
            state=state,
            error=error,
            not_before_s=self.not_before_s if not_before_s is None else not_before_s,
            attempts=self.attempts + (1 if charge_attempt else 0),
            deterministic_failures=self.deterministic_failures
            + (1 if charge_deterministic else 0),
            updated_s=time.time(),
        )

    def rescheduled(self, not_before_s: float) -> "Job":
        """The same record with only its backoff deadline replaced.

        Not a state transition — used by queue recovery to forget a dead
        process's monotonic-clock backoff deadline.
        """
        return replace(self, not_before_s=float(not_before_s), updated_s=time.time())

    def requeued(self) -> "Job":
        """A fresh ``queued`` copy of a terminal job (damage resubmission).

        Used when a ``done`` job's stored result turns out corrupt (the
        store quarantined it) — the work must be redone, and the retry
        counters restart because the new run is a new campaign.
        """
        return replace(
            self,
            state=JobState.QUEUED,
            attempts=0,
            deterministic_failures=0,
            not_before_s=0.0,
            error=None,
            updated_s=time.time(),
        )

    @property
    def terminal(self) -> bool:
        return self.state in (JobState.DONE, JobState.DEAD)

    # ------------------------------------------------------------- serialization
    def to_dict(self) -> Dict[str, Any]:
        return asdict(self)

    @classmethod
    def from_dict(cls, data: Dict[str, Any]) -> "Job":
        fields = {
            "job_id": str(data["job_id"]),
            "experiment": str(data["experiment"]),
            "options": data.get("options"),
            "state": str(data["state"]),
            "jobs": int(data.get("jobs", 1)),
            "attempts": int(data.get("attempts", 0)),
            "deterministic_failures": int(data.get("deterministic_failures", 0)),
            "not_before_s": float(data.get("not_before_s", 0.0)),
            "created_s": float(data.get("created_s", 0.0)),
            "updated_s": float(data.get("updated_s", 0.0)),
            "error": data.get("error"),
        }
        if fields["state"] not in JobState.ALL:
            raise ConfigurationError(f"unknown job state {fields['state']!r}")
        return cls(**fields)

    def public_view(self) -> Dict[str, Any]:
        """The fields the HTTP API exposes for this job."""
        return {
            "job_id": self.job_id,
            "experiment": self.experiment,
            "options": self.options,
            "state": self.state,
            "jobs": self.jobs,
            "attempts": self.attempts,
            "deterministic_failures": self.deterministic_failures,
            "created_s": self.created_s,
            "updated_s": self.updated_s,
            "error": self.error,
        }


def job_checksum(job_dict: Dict[str, Any]) -> str:
    """Integrity hash of one persisted job record (canonical JSON)."""
    canonical = json.dumps(job_dict, sort_keys=True)
    return hashlib.sha256(canonical.encode("utf-8")).hexdigest()
