"""Deterministic heap-based event queue for the network simulator.

The engine is a classic discrete-event loop: every state change is an
:class:`Event` with a simulation timestamp, and the :class:`EventQueue`
always hands back the earliest pending one.  Two properties matter for the
byte-identical parallel sweeps the orchestrator promises:

* **Total order.**  Events are keyed by ``(time_s, sequence)`` where the
  sequence number records insertion order, so simultaneous events pop in
  the order they were scheduled — never in payload-comparison or hash
  order.  No wall-clock or id()-based tie-breaking sneaks in.
* **No hidden entropy.**  The queue itself never touches a random
  generator; all randomness flows through the engine's single
  ``SeedSequence``-derived generator in pop order.
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass, field
from enum import IntEnum
from typing import Any, Iterator

from ..exceptions import ConfigurationError

__all__ = ["EventKind", "Event", "EventQueue", "EpochEventCore"]


class EventKind(IntEnum):
    """What an event asks the engine to do when it fires."""

    ARRIVAL = 0
    """A traffic request enters its source ONI's injection queue."""

    DEPARTURE = 1
    """A scheduled (re)transmission finishes serialising on its channel."""

    RETRY = 2
    """A backed-off ARQ attempt (or a deferred transfer waiting out a
    blackout) re-enters the channel-request path."""

    LINK_FAULT = 3
    """A channel's hard-fault health changes (see
    :mod:`repro.netsim.failures`); drives availability accounting and the
    degradation ladder's reactions."""


@dataclass(frozen=True, order=True, slots=True)
class Event:
    """One scheduled state change, totally ordered by ``(time, sequence)``.

    ``slots=True`` keeps the per-event footprint to the four fields — the
    engine allocates one of these per arrival/departure, so the instance
    dict would otherwise dominate the hot loop's allocation traffic.
    """

    time_s: float
    sequence: int
    kind: EventKind = field(compare=False)
    payload: Any = field(compare=False, default=None)


class EventQueue:
    """Min-heap of :class:`Event` objects with deterministic tie-breaking."""

    __slots__ = ("_heap", "_sequence", "_processed")

    def __init__(self) -> None:
        self._heap: list[Event] = []
        self._sequence = 0
        self._processed = 0

    def __len__(self) -> int:
        return len(self._heap)

    def __bool__(self) -> bool:
        return bool(self._heap)

    @property
    def events_processed(self) -> int:
        """Number of events popped so far (the benchmark's events/s basis)."""
        return self._processed

    def push(self, time_s: float, kind: EventKind, payload: Any = None) -> Event:
        """Schedule an event; returns the stored (sequenced) event."""
        if time_s < 0.0:
            raise ConfigurationError("event time cannot be negative")
        event = Event(time_s=float(time_s), sequence=self._sequence, kind=kind, payload=payload)
        self._sequence += 1
        heapq.heappush(self._heap, event)
        return event

    def pop(self) -> Event:
        """Remove and return the earliest pending event."""
        if not self._heap:
            raise ConfigurationError("cannot pop from an empty event queue")
        self._processed += 1
        return heapq.heappop(self._heap)

    def drain(self) -> Iterator[Event]:
        """Iterate events in simulation order until the queue runs dry."""
        while self._heap:
            yield self.pop()


class EpochEventCore:
    """Merge-ordered event core: a presorted static schedule + a dynamic heap.

    The epoch-batched engine's replacement for :class:`EventQueue`.  It
    exploits the workload's structure: the bulk of the events (arrivals and
    fault transitions) are known up front, so they are sequenced once, sorted
    once and consumed by cursor — no per-event heap traffic, no
    :class:`Event` allocation.  Only the events scheduled *during* the run
    (departures, retries) go through a small ``heapq`` of plain tuples whose
    comparisons never leave C (the ``(time, sequence)`` prefix is always
    decisive because sequence numbers are unique).

    The order it hands events out in is exactly :class:`EventQueue`'s total
    order: ``(time_s, sequence)`` with sequence numbers assigned in push
    order, static events first.  That equivalence — plus no event lost or
    duplicated across the static/dynamic boundary — is what the
    property-based suite (``tests/netsim/test_event_core.py``) pins against
    a plain-heap model.
    """

    __slots__ = ("_static", "_cursor", "_heap", "_sequence", "events_processed")

    def __init__(self, static_events: Iterable[tuple] = ()) -> None:
        """``static_events`` yields ``(time_s, kind, payload)`` in push order."""
        static: list[tuple] = [
            (float(time_s), sequence, kind, payload)
            for sequence, (time_s, kind, payload) in enumerate(static_events)
        ]
        # min() compares the (time, sequence) prefix only — sequence numbers
        # are unique — so this is the same per-event negativity check as
        # push(), one C-level pass instead of a Python-level loop.
        if static and min(static)[0] < 0.0:
            raise ConfigurationError("event time cannot be negative")
        # Unique sequence numbers make the (time, sequence) prefix decisive,
        # so tuple comparison never reaches the kind/payload slots.
        static.sort()
        self._static = static
        self._cursor = 0
        self._heap: list[tuple] = []
        self._sequence = len(static)
        #: Number of events popped so far (the benchmark's events/s basis).
        self.events_processed = 0

    def __len__(self) -> int:
        return len(self._static) - self._cursor + len(self._heap)

    def __bool__(self) -> bool:
        return self._cursor < len(self._static) or bool(self._heap)

    def push(self, time_s: float, kind: EventKind, payload: Any = None) -> None:
        """Schedule a dynamic event (sequenced after every static one)."""
        time_s = float(time_s)
        if time_s < 0.0:
            raise ConfigurationError("event time cannot be negative")
        heapq.heappush(self._heap, (time_s, self._sequence, kind, payload))
        self._sequence += 1

    def pop(self) -> tuple | None:
        """Earliest pending ``(time_s, sequence, kind, payload)``; ``None`` when dry."""
        static = self._static
        cursor = self._cursor
        heap = self._heap
        if cursor < len(static):
            event = static[cursor]
            if not heap or event < heap[0]:
                self._cursor = cursor + 1
            else:
                event = heapq.heappop(heap)
            self.events_processed += 1
            return event
        if heap:
            self.events_processed += 1
            return heapq.heappop(heap)
        return None
