"""repro — reproduction of "Energy and Performance Trade-off in Nanophotonic
Interconnects using Coding Techniques" (Killian et al., DAC 2017).

The package models an optical network-on-chip (MWSR channels built from
on-chip VCSELs, micro-ring modulators, waveguides and photodetectors) whose
laser output power is co-designed with an error-correcting code applied in
the electrical domain: accepting raw channel errors that the code will
correct lets the laser run at a much lower power for the same post-decoding
bit error rate.

Typical use::

    from repro import OpticalLinkDesigner, paper_code_set

    designer = OpticalLinkDesigner()
    for code in paper_code_set():
        point = designer.design_point(code, target_ber=1e-11)
        print(code.name, point.laser_power_mw, "mW")

Sub-packages
------------
``repro.coding``        error-correction codes and their analysis
``repro.channel``       BER/SNR mathematics and stochastic channels
``repro.photonics``     device models (rings, lasers, detectors, waveguides)
``repro.link``          MWSR power budget and operating-point design
``repro.interconnect``  topology, channels and network-level aggregation
``repro.interfaces``    electrical TX/RX interface models (Table I)
``repro.power``         channel power and energy-per-bit accounting
``repro.manager``       runtime energy/performance manager and policies
``repro.simulation``    bit- and message-level simulators
``repro.traffic``       synthetic workload generators
``repro.netsim``        discrete-event network simulator of the managed ring
``repro.experiments``   one module per table/figure of the paper
"""

from .config import DEFAULT_CONFIG, PaperConfig
from .exceptions import (
    CodingError,
    ConfigurationError,
    InfeasibleDesignError,
    LaserPowerExceededError,
    ReproError,
)
from .coding import (
    BCHCode,
    ExtendedHammingCode,
    HammingCode,
    ShortenedHammingCode,
    UncodedScheme,
    get_code,
)
from .coding.registry import paper_code_set
from .link import LinkDesignPoint, LinkPowerBudget, OpticalLinkDesigner
from .manager import (
    CommunicationRequest,
    MinimumEnergyPolicy,
    MinimumPowerPolicy,
    OpticalLinkManager,
)
from .netsim import NetworkSimulator
from .photonics import MicroringResonator, Photodetector, VCSELModel, Waveguide
from .power import channel_power_breakdown, energy_metrics, interconnect_power_summary

__version__ = "1.0.0"

__all__ = [
    "DEFAULT_CONFIG",
    "PaperConfig",
    "ReproError",
    "ConfigurationError",
    "CodingError",
    "InfeasibleDesignError",
    "LaserPowerExceededError",
    "HammingCode",
    "ShortenedHammingCode",
    "ExtendedHammingCode",
    "BCHCode",
    "UncodedScheme",
    "get_code",
    "paper_code_set",
    "LinkPowerBudget",
    "LinkDesignPoint",
    "OpticalLinkDesigner",
    "OpticalLinkManager",
    "CommunicationRequest",
    "MinimumPowerPolicy",
    "MinimumEnergyPolicy",
    "NetworkSimulator",
    "MicroringResonator",
    "VCSELModel",
    "Photodetector",
    "Waveguide",
    "channel_power_breakdown",
    "energy_metrics",
    "interconnect_power_summary",
    "__version__",
]
