"""Packaging sanity: every declared console script resolves to a callable.

Entry points are only exercised at install time, which no unit test does;
a typo in ``setup.py`` would otherwise surface as a broken console script
on a user's machine.  This test parses the declarations out of ``setup.py``
with ``ast`` (no setuptools import, no install) and imports each target.
"""

from __future__ import annotations

import ast
import importlib
import os

import pytest

REPO_ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
SETUP_PY = os.path.join(REPO_ROOT, "setup.py")


def _console_scripts() -> dict:
    """``{script_name: "module:attr"}`` parsed from setup.py's entry_points."""
    tree = ast.parse(open(SETUP_PY, encoding="utf-8").read())
    for node in ast.walk(tree):
        if not (isinstance(node, ast.keyword) and node.arg == "entry_points"):
            continue
        mapping = ast.literal_eval(node.value)
        scripts = {}
        for declaration in mapping.get("console_scripts", []):
            name, _, target = declaration.partition("=")
            scripts[name.strip()] = target.strip()
        return scripts
    raise AssertionError("setup.py declares no entry_points")


SCRIPTS = _console_scripts()


def test_repro_lint_script_is_declared():
    assert SCRIPTS.get("repro-lint") == "repro.analysis.cli:main"


@pytest.mark.parametrize("name", sorted(SCRIPTS))
def test_console_script_targets_are_importable(name):
    module_name, _, attribute = SCRIPTS[name].partition(":")
    module = importlib.import_module(module_name)
    target = getattr(module, attribute)
    assert callable(target), f"{name} -> {SCRIPTS[name]} is not callable"


def test_repro_lint_main_accepts_argv():
    from repro.analysis.cli import main

    assert main(["--list-rules"]) == 0
