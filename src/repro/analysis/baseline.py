"""The checked-in baseline of grandfathered findings.

A baseline entry matches findings by ``(path, code, content hash of the
offending line)`` plus an occurrence count — not by line number — so code
motion above a grandfathered finding does not resurrect it, while *any*
edit to the offending line itself does (the hash changes), forcing the
editor to either fix the violation or re-justify it.

The file is JSON with a stable, diff-friendly shape; regenerate it with
``repro-lint --write-baseline``.  Strict runs (``--strict``) additionally
fail when the baseline contains *stale* entries — grandfathered findings
that no longer occur — so the baseline can only ever shrink silently,
never grow.
"""

from __future__ import annotations

import json
from collections import Counter
from typing import Iterable, List, Tuple

from ..exceptions import ConfigurationError
from .findings import Finding

__all__ = ["Baseline", "write_baseline"]

_VERSION = 1


class Baseline:
    """Occurrence-counted suppression set loaded from a baseline file."""

    def __init__(self, entries: Counter | None = None):
        self.entries: Counter = Counter(entries or {})

    @classmethod
    def load(cls, path: str) -> "Baseline":
        try:
            with open(path, "r", encoding="utf-8") as handle:
                document = json.load(handle)
        except OSError as error:
            raise ConfigurationError(f"cannot read baseline {path!r}: {error}") from error
        except ValueError as error:
            raise ConfigurationError(f"baseline {path!r} is not valid JSON: {error}") from error
        if not isinstance(document, dict) or document.get("version") != _VERSION:
            raise ConfigurationError(
                f"baseline {path!r} is not a version-{_VERSION} repro-lint baseline"
            )
        entries: Counter = Counter()
        for record in document.get("entries", ()):
            if not isinstance(record, dict):
                raise ConfigurationError(f"baseline {path!r} has a malformed entry")
            try:
                key = (str(record["path"]), str(record["code"]), str(record["snippet_sha"]))
                count = int(record.get("count", 1))
            except (KeyError, TypeError, ValueError) as error:
                raise ConfigurationError(
                    f"baseline {path!r} has a malformed entry: {error}"
                ) from error
            entries[key] += max(1, count)
        return cls(entries)

    def apply(
        self, findings: Iterable[Finding]
    ) -> Tuple[List[Finding], List[Finding], List[Tuple[str, str, str]]]:
        """Split findings into ``(kept, suppressed)`` plus stale entries.

        Each baseline entry absorbs up to ``count`` matching findings; the
        remainder of the budget (entries that matched nothing, or matched
        fewer findings than recorded) is returned as *stale*.
        """
        budget = Counter(self.entries)
        kept: List[Finding] = []
        suppressed: List[Finding] = []
        for finding in sorted(findings):
            key = finding.baseline_key
            if budget.get(key, 0) > 0:
                budget[key] -= 1
                suppressed.append(finding)
            else:
                kept.append(finding)
        stale = sorted(key for key, remaining in budget.items() if remaining > 0)
        return kept, suppressed, stale


def write_baseline(path: str, findings: Iterable[Finding]) -> int:
    """Persist ``findings`` as the new baseline; returns the entry count."""
    counts: Counter = Counter(finding.baseline_key for finding in findings)
    entries = [
        {"path": key[0], "code": key[1], "snippet_sha": key[2], "count": count}
        for key, count in sorted(counts.items())
    ]
    document = {"version": _VERSION, "entries": entries}
    with open(path, "w", encoding="utf-8") as handle:
        json.dump(document, handle, indent=2, sort_keys=True)
        handle.write("\n")
    return len(entries)
