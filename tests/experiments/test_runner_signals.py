"""Regression tests: ``repro-experiments`` exits gracefully on SIGTERM/SIGINT.

A real subprocess runs the CLI on a deliberately slow registered
experiment; the test signals it mid-sweep and asserts the contract of the
graceful path: the final checkpoint is written, the exit code is 130 and
stderr carries a one-line resume hint.  A follow-up ``--resume`` run picks
the sweep up from exactly the shards that landed.
"""

from __future__ import annotations

import os
import signal
import subprocess
import sys
import time

import pytest

REPO_SRC = os.path.join(os.path.dirname(__file__), "..", "..", "src")

#: Child program: registers a slow 6-shard experiment (each shard touches a
#: marker file, then sleeps) and hands control to the CLI's main().
CHILD = """
import os, sys, time
from repro.experiments.orchestrator import GridFunctions, register_experiment
from repro.experiments.runner import main

WORK = sys.argv[1]

def shards(config, options):
    return [{"index": index} for index in range(6)]

def run_shard(params, config):
    with open(os.path.join(WORK, f"marker-{params['index']}"), "a") as handle:
        handle.write("x")
    time.sleep(float(os.environ.get("SHARD_SLEEP_S", "0.4")))
    return {"index": params["index"], "value": params["index"] * 7}

def merge(payloads, config, options):
    rows = [dict(p) for p in payloads]
    return "total: " + str(sum(r["value"] for r in rows)), rows

register_experiment("slowsig", GridFunctions(shards, run_shard, merge), replace=True)
sys.exit(main(sys.argv[2:]))
"""


def _spawn(work_dir: str, *cli_args: str, sleep_s: str = "0.4") -> subprocess.Popen:
    env = dict(os.environ)
    env["PYTHONPATH"] = REPO_SRC + os.pathsep + env.get("PYTHONPATH", "")
    env["SHARD_SLEEP_S"] = sleep_s
    return subprocess.Popen(
        [sys.executable, "-c", CHILD, work_dir, "slowsig", *cli_args],
        stdout=subprocess.PIPE,
        stderr=subprocess.PIPE,
        text=True,
        env=env,
    )


def _wait_for_marker(work_dir: str, deadline_s: float = 30.0) -> None:
    deadline = time.monotonic() + deadline_s
    while time.monotonic() < deadline:
        if any(name.startswith("marker-") for name in os.listdir(work_dir)):
            return
        time.sleep(0.02)
    raise AssertionError("the sweep never started a shard")


@pytest.mark.parametrize("signum", [signal.SIGTERM, signal.SIGINT])
def test_signal_mid_sweep_checkpoints_and_hints(tmp_path, signum):
    work = tmp_path / "work"
    work.mkdir()
    ckpt = tmp_path / "ckpt"
    process = _spawn(str(work), "--checkpoint-dir", str(ckpt))
    try:
        _wait_for_marker(str(work))
        process.send_signal(signum)
        stdout, stderr = process.communicate(timeout=60)
    finally:
        if process.poll() is None:
            process.kill()
            process.communicate()

    assert process.returncode == 130, stderr
    assert "interrupted by signal" in stderr
    assert f"resume with: repro-experiments slowsig --resume --checkpoint-dir {ckpt}" in stderr
    # the checkpoint of the landed shards was finalized before exiting
    checkpoint = ckpt / "slowsig.json"
    assert checkpoint.exists() and checkpoint.stat().st_size > 0

    # --resume finishes the sweep; already-landed shards are not re-executed
    markers_before = {
        name: open(work / name).read() for name in os.listdir(work)
    }
    resumed = _spawn(
        str(work), "--resume", "--checkpoint-dir", str(ckpt), sleep_s="0.0"
    )
    stdout, stderr = resumed.communicate(timeout=120)
    assert resumed.returncode == 0, stderr
    assert "total: " + str(sum(index * 7 for index in range(6))) in stdout
    for name, content in markers_before.items():
        assert open(work / name).read() == content, f"{name} was re-executed"


def test_signal_without_checkpoint_dir_explains_the_loss(tmp_path):
    work = tmp_path / "work"
    work.mkdir()
    process = _spawn(str(work))
    try:
        _wait_for_marker(str(work))
        process.send_signal(signal.SIGTERM)
        stdout, stderr = process.communicate(timeout=60)
    finally:
        if process.poll() is None:
            process.kill()
            process.communicate()
    assert process.returncode == 130
    assert "no --checkpoint-dir was given" in stderr


def test_unsignalled_run_exits_zero(tmp_path):
    work = tmp_path / "work"
    work.mkdir()
    process = _spawn(str(work), sleep_s="0.0")
    stdout, stderr = process.communicate(timeout=120)
    assert process.returncode == 0, stderr
    assert "Experiment slowsig" in stdout
