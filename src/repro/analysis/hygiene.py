"""Hot-path and API hygiene rules (``RPR3xx``)."""

from __future__ import annotations

import ast
from typing import List, Optional, Set

from .astutil import dotted_name
from .registry import rule

__all__ = [
    "check_slots",
    "check_mutable_defaults",
    "check_silent_except",
    "check_all_drift",
]

#: Base classes that manage their own storage layout (``__slots__`` is
#: meaningless, harmful, or implied for their subclasses).
_SLOTS_EXEMPT_BASES = frozenset(
    {
        "NamedTuple", "Enum", "IntEnum", "StrEnum", "Flag", "IntFlag",
        "Protocol", "ABC", "type", "TypedDict", "SimpleNamespace",
    }
)

_MUTABLE_FACTORIES = frozenset(
    {"list", "dict", "set", "bytearray", "defaultdict", "Counter", "deque", "OrderedDict"}
)


def _base_names(cls: ast.ClassDef) -> Set[str]:
    names: Set[str] = set()
    for base in cls.bases:
        dotted = dotted_name(base)
        if dotted is not None:
            names.add(dotted.split(".")[-1])
    return names


def _dataclass_slots(cls: ast.ClassDef) -> Optional[bool]:
    """``True``/``False`` for a dataclass with/without slots, else ``None``."""
    for decorator in cls.decorator_list:
        call = decorator if isinstance(decorator, ast.Call) else None
        target = call.func if call is not None else decorator
        dotted = dotted_name(target)
        if dotted is None or dotted.split(".")[-1] != "dataclass":
            continue
        if call is None:
            return False
        for keyword in call.keywords:
            if keyword.arg == "slots":
                return bool(
                    isinstance(keyword.value, ast.Constant) and keyword.value.value is True
                )
        return False
    return None


def _has_slots_assignment(cls: ast.ClassDef) -> bool:
    for node in cls.body:
        targets = []
        if isinstance(node, ast.Assign):
            targets = node.targets
        elif isinstance(node, ast.AnnAssign):
            targets = [node.target]
        for target in targets:
            if isinstance(target, ast.Name) and target.id == "__slots__":
                return True
    return False


@rule(
    "RPR301",
    "slots-required",
    "classes in configured hot modules must be __slots__-shaped",
    scope="slots_modules",
)
def check_slots(ctx) -> List:
    findings = []
    for cls in ast.walk(ctx.tree):
        if not isinstance(cls, ast.ClassDef):
            continue
        bases = _base_names(cls)
        if bases & _SLOTS_EXEMPT_BASES:
            continue
        if any(name.endswith(("Error", "Exception", "Warning")) for name in bases):
            continue
        slots = _dataclass_slots(cls)
        if slots is True or _has_slots_assignment(cls):
            continue
        how = "@dataclass(slots=True)" if slots is False else "__slots__"
        findings.append(
            ctx.finding(
                cls,
                "RPR301",
                f"class {cls.name} lives in a hot module but has no "
                f"__slots__ — per-instance dicts dominate allocation traffic "
                f"here; declare {how}",
            )
        )
    return findings


@rule(
    "RPR302",
    "mutable-default-argument",
    "no mutable default arguments",
)
def check_mutable_defaults(ctx) -> List:
    findings = []
    for node in ast.walk(ctx.tree):
        if not isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef, ast.Lambda)):
            continue
        defaults = list(node.args.defaults) + [
            default for default in node.args.kw_defaults if default is not None
        ]
        for default in defaults:
            mutable = isinstance(
                default, (ast.List, ast.Dict, ast.Set, ast.ListComp, ast.DictComp, ast.SetComp)
            ) or (
                isinstance(default, ast.Call)
                and isinstance(default.func, ast.Name)
                and default.func.id in _MUTABLE_FACTORIES
            )
            if mutable:
                name = getattr(node, "name", "<lambda>")
                findings.append(
                    ctx.finding(
                        default,
                        "RPR302",
                        f"mutable default argument in {name}() is shared "
                        "across calls; default to None and construct inside",
                    )
                )
    return findings


@rule(
    "RPR303",
    "silent-exception-swallow",
    "no bare except, no except Exception: pass",
)
def check_silent_except(ctx) -> List:
    findings = []
    for node in ast.walk(ctx.tree):
        if not isinstance(node, ast.ExceptHandler):
            continue
        if node.type is None:
            findings.append(
                ctx.finding(
                    node,
                    "RPR303",
                    "bare `except:` catches SystemExit/KeyboardInterrupt too; "
                    "name the exception types",
                )
            )
            continue
        type_names = set()
        candidates = node.type.elts if isinstance(node.type, ast.Tuple) else [node.type]
        for candidate in candidates:
            dotted = dotted_name(candidate)
            if dotted is not None:
                type_names.add(dotted.split(".")[-1])
        swallows = all(
            isinstance(statement, ast.Pass)
            or (
                isinstance(statement, ast.Expr)
                and isinstance(statement.value, ast.Constant)
                and statement.value.value is Ellipsis
            )
            for statement in node.body
        )
        if swallows and type_names & {"Exception", "BaseException"}:
            findings.append(
                ctx.finding(
                    node,
                    "RPR303",
                    "except Exception: pass silently swallows every failure; "
                    "log it or narrow the type",
                )
            )
    return findings


def _module_all(tree: ast.Module) -> Optional[List[ast.Constant]]:
    """The ``__all__`` literal's elements, or ``None`` (absent/not literal)."""
    elements: Optional[List[ast.Constant]] = None
    for node in tree.body:
        targets = []
        if isinstance(node, ast.Assign):
            targets = node.targets
        elif isinstance(node, (ast.AugAssign, ast.AnnAssign)):
            targets = [node.target]
        for target in targets:
            if not (isinstance(target, ast.Name) and target.id == "__all__"):
                continue
            value = getattr(node, "value", None)
            if isinstance(node, ast.Assign) and isinstance(value, (ast.List, ast.Tuple)):
                constants = [
                    element
                    for element in value.elts
                    if isinstance(element, ast.Constant) and isinstance(element.value, str)
                ]
                if len(constants) == len(value.elts):
                    elements = constants
                    continue
            # Augmented / computed __all__: give up rather than guess.
            return None
    return elements


def _top_level_names(tree: ast.Module) -> Set[str]:
    names: Set[str] = set()
    for node in tree.body:
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef)):
            names.add(node.name)
        elif isinstance(node, ast.Assign):
            for target in node.targets:
                for element in ast.walk(target):
                    if isinstance(element, ast.Name):
                        names.add(element.id)
        elif isinstance(node, ast.AnnAssign) and isinstance(node.target, ast.Name):
            names.add(node.target.id)
        elif isinstance(node, ast.Import):
            for alias in node.names:
                names.add((alias.asname or alias.name).split(".")[0])
        elif isinstance(node, ast.ImportFrom):
            for alias in node.names:
                if alias.name != "*":
                    names.add(alias.asname or alias.name)
        elif isinstance(node, (ast.If, ast.Try)):
            # Conditionally-defined names (version guards) still count.
            for child in ast.walk(node):
                if isinstance(child, (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef)):
                    names.add(child.name)
                elif isinstance(child, ast.Assign):
                    for target in child.targets:
                        if isinstance(target, ast.Name):
                            names.add(target.id)
    return names


@rule(
    "RPR304",
    "all-drift",
    "__all__ must match the module's actual public defs",
)
def check_all_drift(ctx) -> List:
    findings = []
    exported = _module_all(ctx.tree)
    if exported is None:
        return findings
    defined = _top_level_names(ctx.tree)
    exported_names = {element.value for element in exported}
    for element in exported:
        if element.value not in defined:
            findings.append(
                ctx.finding(
                    element,
                    "RPR304",
                    f"__all__ exports {element.value!r} which is not defined "
                    "in this module (drift after a rename/removal?)",
                )
            )
    for node in ctx.tree.body:
        if not isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef)):
            continue
        if node.name.startswith("_") or node.name in exported_names:
            continue
        kind = "class" if isinstance(node, ast.ClassDef) else "function"
        findings.append(
            ctx.finding(
                node,
                "RPR304",
                f"public {kind} {node.name} is missing from __all__ (add it "
                "or rename it _private)",
            )
        )
    return findings
