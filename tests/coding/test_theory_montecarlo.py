"""Tests for the analytic BER expressions and their Monte-Carlo validation."""

from __future__ import annotations

import numpy as np
import pytest

from repro.coding.hamming import HammingCode, ShortenedHammingCode
from repro.coding.montecarlo import estimate_ber_monte_carlo
from repro.coding.theory import (
    block_error_probability,
    code_rate,
    coded_ber_bounded_distance,
    hamming_output_ber,
    output_ber,
    raw_ber_for_target_output_ber,
    undetected_error_probability_upper_bound,
)
from repro.coding.uncoded import UncodedScheme
from repro.exceptions import ConfigurationError


class TestCodeRate:
    def test_basic_values(self):
        assert code_rate(7, 4) == pytest.approx(4.0 / 7.0)
        assert code_rate(71, 64) == pytest.approx(64.0 / 71.0)

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            code_rate(4, 7)
        with pytest.raises(ConfigurationError):
            code_rate(7, 0)


class TestHammingOutputBer:
    def test_paper_equation_two_form(self):
        # BER = p - p(1-p)^(n-1) exactly.
        p, n = 1e-3, 7
        assert hamming_output_ber(p, n) == pytest.approx(p - p * (1 - p) ** (n - 1))

    def test_small_p_quadratic_behaviour(self):
        p, n = 1e-6, 7
        assert hamming_output_ber(p, n) == pytest.approx((n - 1) * p * p, rel=1e-3)

    def test_zero_and_extreme_inputs(self):
        assert hamming_output_ber(0.0, 7) == 0.0
        assert hamming_output_ber(1.0, 7) == pytest.approx(1.0)

    def test_output_is_below_input_for_small_p(self):
        for p in (1e-2, 1e-4, 1e-6):
            assert hamming_output_ber(p, 7) < p
            assert hamming_output_ber(p, 71) < p

    def test_longer_blocks_give_higher_residual_ber(self):
        p = 1e-4
        assert hamming_output_ber(p, 71) > hamming_output_ber(p, 7)

    def test_vectorised_input(self):
        p = np.array([1e-3, 1e-4, 1e-5])
        result = hamming_output_ber(p, 7)
        assert result.shape == p.shape
        assert np.all(result < p)

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            hamming_output_ber(-0.1, 7)
        with pytest.raises(ConfigurationError):
            hamming_output_ber(0.5, 1)


class TestBoundedDistanceBer:
    def test_t_zero_is_passthrough(self):
        assert coded_ber_bounded_distance(1e-3, 64, 0) == pytest.approx(1e-3)

    def test_t_one_tracks_hamming_equation(self):
        p = 1e-4
        approx = coded_ber_bounded_distance(p, 7, 1)
        exact = hamming_output_ber(p, 7)
        assert approx == pytest.approx(exact, rel=0.5)

    def test_more_correction_means_lower_residual(self):
        p = 1e-3
        t1 = coded_ber_bounded_distance(p, 63, 1)
        t2 = coded_ber_bounded_distance(p, 63, 2)
        t3 = coded_ber_bounded_distance(p, 63, 3)
        assert t3 < t2 < t1

    def test_zero_raw_ber(self):
        assert coded_ber_bounded_distance(0.0, 15, 2) == 0.0

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            coded_ber_bounded_distance(2.0, 7, 1)
        with pytest.raises(ConfigurationError):
            coded_ber_bounded_distance(0.1, 0, 1)
        with pytest.raises(ConfigurationError):
            coded_ber_bounded_distance(0.1, 7, -1)


class TestOutputBerDispatch:
    def test_uncoded_passthrough(self):
        assert output_ber(UncodedScheme(64), 1e-5) == pytest.approx(1e-5)

    def test_hamming_uses_equation_two(self):
        code = HammingCode(3)
        assert output_ber(code, 1e-4) == pytest.approx(hamming_output_ber(1e-4, 7))

    def test_bch_uses_bounded_distance(self):
        from repro.coding.bch import BCHCode

        code = BCHCode(4, 2)
        assert output_ber(code, 1e-3) == pytest.approx(
            coded_ber_bounded_distance(1e-3, 15, 2)
        )


class TestInversion:
    def test_uncoded_inversion_is_identity(self):
        assert raw_ber_for_target_output_ber(UncodedScheme(64), 1e-9) == pytest.approx(1e-9)

    @pytest.mark.parametrize("target", [1e-6, 1e-9, 1e-11, 1e-12, 1e-15])
    @pytest.mark.parametrize("code_factory", [lambda: HammingCode(3), lambda: ShortenedHammingCode(64)])
    def test_round_trip_through_output_ber(self, target, code_factory):
        code = code_factory()
        raw = raw_ber_for_target_output_ber(code, target)
        assert output_ber(code, raw) == pytest.approx(target, rel=1e-6)

    def test_coded_links_tolerate_higher_raw_ber(self):
        target = 1e-11
        raw_h74 = raw_ber_for_target_output_ber(HammingCode(3), target)
        raw_h71 = raw_ber_for_target_output_ber(ShortenedHammingCode(64), target)
        assert raw_h74 > raw_h71 > target

    def test_small_p_approximation(self):
        # For small targets, p ~ sqrt(target / (n-1)).
        code = HammingCode(3)
        target = 1e-12
        raw = raw_ber_for_target_output_ber(code, target)
        assert raw == pytest.approx(np.sqrt(target / 6.0), rel=0.05)

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            raw_ber_for_target_output_ber(HammingCode(3), 0.7)


class TestUndetectedErrorBound:
    def test_zero_raw_ber(self):
        assert undetected_error_probability_upper_bound(0.0, 7, 3) == 0.0

    def test_bound_decreases_with_distance(self):
        p = 1e-3
        d2 = undetected_error_probability_upper_bound(p, 63, 2)
        d4 = undetected_error_probability_upper_bound(p, 63, 4)
        assert d4 < d2

    def test_bound_is_a_probability(self):
        assert 0.0 <= undetected_error_probability_upper_bound(0.3, 15, 3) <= 1.0

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            undetected_error_probability_upper_bound(0.1, 7, 0)
        with pytest.raises(ConfigurationError):
            undetected_error_probability_upper_bound(0.1, 7, 8)


class TestBlockErrorProbability:
    def test_matches_binomial_tail_for_hamming(self):
        # P(> 1 error in 7 bits) computed directly.
        p = 0.05
        exact = 1.0 - (1.0 - p) ** 7 - 7 * p * (1.0 - p) ** 6
        assert block_error_probability(p, 7, 1) == pytest.approx(exact, rel=1e-12)

    def test_uncoded_is_at_least_one_error(self):
        p = 0.01
        assert block_error_probability(p, 64, 0) == pytest.approx(
            1.0 - (1.0 - p) ** 64, rel=1e-12
        )

    def test_zero_raw_ber_never_fails(self):
        assert block_error_probability(0.0, 71, 1) == 0.0

    def test_deep_tail_does_not_underflow_to_zero(self):
        # 1 - head-sum would cancel to 0.0 here; the survival-function path
        # keeps the tail's relative accuracy.
        tail = block_error_probability(1e-7, 72, 2)
        assert tail == pytest.approx(5.96e-17, rel=1e-2)
        assert block_error_probability(1e-12, 72, 1) > 0.0

    def test_more_correction_fails_less(self):
        p = 1e-2
        assert block_error_probability(p, 63, 2) < block_error_probability(p, 63, 1)

    def test_monte_carlo_agreement(self, rng):
        # The frame-error rate of the real decoder tracks the analytic tail
        # (exact for the perfect Hamming code).
        code = HammingCode(3)
        p = 0.04
        result = estimate_ber_monte_carlo(code, p, num_blocks=20000, rng=rng)
        predicted = block_error_probability(p, code.n, code.correctable_errors)
        assert result.block_error_rate == pytest.approx(predicted, rel=0.1)

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            block_error_probability(1.5, 7, 1)
        with pytest.raises(ConfigurationError):
            block_error_probability(0.1, 0, 1)
        with pytest.raises(ConfigurationError):
            block_error_probability(0.1, 7, -1)


class TestMonteCarloEstimation:
    def test_uncoded_estimate_matches_channel_ber(self, rng):
        result = estimate_ber_monte_carlo(UncodedScheme(64), 0.01, num_blocks=400, rng=rng)
        assert result.estimated_ber == pytest.approx(0.01, rel=0.3)

    def test_hamming_estimate_tracks_equation_two(self, rng):
        raw = 0.01
        result = estimate_ber_monte_carlo(HammingCode(3), raw, num_blocks=4000, rng=rng)
        expected = hamming_output_ber(raw, 7)
        assert result.estimated_ber == pytest.approx(expected, rel=0.5)

    def test_zero_raw_ber_gives_zero_errors(self, rng):
        result = estimate_ber_monte_carlo(HammingCode(3), 0.0, num_blocks=50, rng=rng)
        assert result.bit_errors == 0
        assert result.block_error_rate == 0.0

    def test_confidence_interval_contains_estimate(self, rng):
        result = estimate_ber_monte_carlo(UncodedScheme(16), 0.05, num_blocks=200, rng=rng)
        low, high = result.confidence_interval()
        assert low <= result.estimated_ber <= high

    def test_result_bookkeeping(self, rng):
        result = estimate_ber_monte_carlo(HammingCode(3), 0.02, num_blocks=100, rng=rng)
        assert result.blocks_simulated == 100
        assert result.bits_simulated == 400
        assert result.code_name == "H(7,4)"

    def test_validation(self, rng):
        with pytest.raises(ConfigurationError):
            estimate_ber_monte_carlo(HammingCode(3), 1.5, rng=rng)
        with pytest.raises(ConfigurationError):
            estimate_ber_monte_carlo(HammingCode(3), 0.1, num_blocks=0, rng=rng)
