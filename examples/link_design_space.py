"""Design-space exploration: coding schemes beyond the paper's pair.

The paper notes that "other coding techniques can be used"; this example
sweeps a wider set of codes (Hamming family, SECDED, a double-error
correcting BCH code) across BER targets, prints the laser power and
energy-per-bit landscape, and extracts the Pareto front in the
(communication time, channel power) plane — the generalisation of Figure 6b.

Run with::

    python examples/link_design_space.py
"""

from __future__ import annotations

from repro import DEFAULT_CONFIG, OpticalLinkDesigner
from repro.coding import (
    BCHCode,
    ExtendedHammingCode,
    HammingCode,
    ShortenedHammingCode,
    UncodedScheme,
)
from repro.manager.pareto import ParetoPoint, pareto_front
from repro.power import channel_power_breakdown, energy_metrics


def candidate_codes():
    """The design space explored: the paper's codes plus natural extensions."""
    return [
        UncodedScheme(64),
        HammingCode(3),            # H(7,4)
        HammingCode(4),            # H(15,11)
        HammingCode(6),            # H(63,57), the Figure 6a label
        ShortenedHammingCode(64),  # H(71,64)
        ExtendedHammingCode(64),   # SECDED(72,64)
        BCHCode(6, 2),             # BCH(63,51), corrects 2 errors
    ]


def main() -> None:
    """Sweep the code set over BER targets and report the trade-off."""
    designer = OpticalLinkDesigner()
    targets = (1e-9, 1e-11, 1e-12, 1e-15)

    for target_ber in targets:
        print(f"\n=== target BER {target_ber:g} ===")
        header = (
            f"{'code':<16} {'rate':>6} {'t':>3} {'CT':>6} {'P_laser':>9} "
            f"{'P_channel':>10} {'E/bit':>9} {'feasible':>9}"
        )
        print(header)
        print("-" * len(header))
        points = []
        for code in candidate_codes():
            breakdown = channel_power_breakdown(code, target_ber, designer=designer)
            energy = energy_metrics(breakdown)
            print(
                f"{code.name:<16} {code.code_rate:6.3f} {code.correctable_errors:3d} "
                f"{code.communication_time_overhead:6.2f} "
                f"{breakdown.laser_power_w * 1e3:6.2f} mW {breakdown.total_power_mw:7.2f} mW "
                f"{energy.energy_per_bit_modulation_pj:6.2f} pJ "
                f"{'yes' if breakdown.feasible else 'no':>9}"
            )
            if breakdown.feasible:
                points.append(
                    ParetoPoint(
                        code_name=code.name,
                        target_ber=target_ber,
                        communication_time=breakdown.communication_time,
                        channel_power_w=breakdown.total_power_w,
                    )
                )
        front = pareto_front(points)
        names = ", ".join(p.code_name for p in front)
        print(f"Pareto front (CT vs channel power): {names if names else 'empty'}")

    print(
        "\nReading the sweep: stronger codes keep lowering the laser power, but their\n"
        "longer codewords raise the communication time; which point to pick is exactly\n"
        "the runtime decision the paper delegates to the link manager."
    )
    # The interconnect geometry used above:
    print(
        f"\n(configuration: {DEFAULT_CONFIG.num_onis} ONIs, "
        f"{DEFAULT_CONFIG.num_wavelengths} wavelengths, "
        f"Fmod = {DEFAULT_CONFIG.modulation_rate_hz / 1e9:.0f} Gb/s)"
    )


if __name__ == "__main__":
    main()
