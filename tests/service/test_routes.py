"""Transport-free tests of the HTTP route table and the load-shedding ladder.

:func:`repro.service.routes.dispatch` maps ``(method, path, query, body)``
to ``(status, payload, headers)`` without a socket, so every admission
decision — the 429/503 ladder, Retry-After hints, method/path errors — is
pinned here without starting a server.
"""

from __future__ import annotations

import pytest

from repro.coding.registry import get_code
from repro.config import DEFAULT_CONFIG
from repro.exceptions import ConfigurationError
from repro.link.design import OpticalLinkDesigner
from repro.obs.metrics import MetricsRegistry
from repro.service.models import Job, JobState
from repro.service.queue import DurableJobQueue
from repro.service.routes import LoadShedder, ServiceContext, dispatch
from repro.service.store import ResultsStore


class _AliveSupervisor:
    """Just enough supervisor for readiness checks."""

    def is_alive(self) -> bool:
        return True


@pytest.fixture
def context(tmp_path):
    registry = MetricsRegistry()
    queue = DurableJobQueue(str(tmp_path / "queue"), max_depth=4)
    shedder = LoadShedder(queue, max_inflight=8, registry=registry)
    return ServiceContext(
        queue=queue,
        store=ResultsStore(str(tmp_path / "results")),
        supervisor=_AliveSupervisor(),
        designer=OpticalLinkDesigner(),
        config=DEFAULT_CONFIG,
        registry=registry,
        shedder=shedder,
    )


def _get(context, path, query=None):
    return dispatch(context, "GET", path, query or {}, None)


def _post(context, path, body=None):
    return dispatch(context, "POST", path, {}, body)


def _fill_queue(context, count):
    for index in range(count):
        context.queue.submit(
            Job(job_id=f"{index:016x}", experiment="table1", options=None)
        )


class TestRouting:
    def test_unknown_path_is_404(self, context):
        status, payload, _ = _get(context, "/nope")
        assert status == 404 and "error" in payload

    def test_wrong_method_is_405(self, context):
        status, _, _ = _post(context, "/healthz")
        assert status == 405
        status, _, _ = _get(context, "/jobs/" + "a" * 16 + "/cancel")
        assert status == 405

    def test_both_methods_of_jobs_routes(self, context):
        status, payload, _ = _get(context, "/jobs")
        assert status == 200 and payload == {"jobs": []}
        status, payload, _ = _post(context, "/jobs", {"experiment": "table1"})
        assert status == 202

    def test_job_id_pattern_is_strict(self, context):
        status, _, _ = _get(context, "/jobs/NOT-A-FINGERPRINT")
        assert status == 404

    def test_missing_job_is_404(self, context):
        status, _, _ = _get(context, "/jobs/" + "a" * 16)
        assert status == 404


class TestValidation:
    def test_submit_needs_object_body(self, context):
        assert _post(context, "/jobs", None)[0] == 400
        assert _post(context, "/jobs", [1, 2])[0] == 400

    def test_submit_unknown_experiment_lists_available(self, context):
        status, payload, _ = _post(context, "/jobs", {"experiment": "nope"})
        assert status == 400

    def test_submit_missing_experiment_lists_available(self, context):
        status, payload, _ = _post(context, "/jobs", {})
        assert status == 400 and "available" in payload

    def test_submit_bounds_worker_count(self, context):
        body = {"experiment": "table1", "jobs": 99}
        assert _post(context, "/jobs", body)[0] == 400

    def test_design_query_validation(self, context):
        assert _get(context, "/design")[0] == 400
        assert _get(context, "/design", {"code": "h(7,4)", "target_ber": "x"})[0] == 400
        status, payload, _ = _get(
            context, "/design", {"code": "nope", "target_ber": "1e-12"}
        )
        assert status == 400 and "available" in payload

    def test_design_query_solves_then_hits_cache(self, context):
        query = {"code": "h(7,4)", "target_ber": "1e-12"}
        status, payload, _ = _get(context, "/design", query)
        assert status == 200 and payload["cached"] is False
        assert payload["point"]["feasible"] is True
        status, payload, _ = _get(context, "/design", query)
        assert status == 200 and payload["cached"] is True

    def test_result_of_unfinished_job_is_409(self, context):
        status, payload, _ = _post(context, "/jobs", {"experiment": "table1"})
        job_id = payload["job_id"]
        status, payload, _ = _get(context, f"/jobs/{job_id}/result")
        assert status == 409 and payload["state"] == JobState.QUEUED


class TestLoadSheddingLadder:
    def test_normal_below_the_shed_fraction(self, context):
        _fill_queue(context, 2)  # 2/4 < 0.75
        assert context.shedder.level() == LoadShedder.NORMAL

    def test_new_submissions_shed_first(self, context):
        _fill_queue(context, 3)  # 3/4 >= 0.75 -> SHED_SWEEPS
        assert context.shedder.level() == LoadShedder.SHED_SWEEPS
        status, payload, headers = _post(context, "/jobs", {"experiment": "table1"})
        assert status == 429
        assert int(headers["Retry-After"]) >= 1
        # joining an existing job is free even while shedding
        status, payload, _ = _get(context, "/jobs/" + "0" * 16)
        assert status == 200

    def test_full_queue_is_cached_only(self, context):
        _fill_queue(context, 4)
        assert context.shedder.level() == LoadShedder.CACHED_ONLY
        # design cache miss refused with 503 ...
        status, payload, _ = _get(
            context, "/design", {"code": "h(7,4)", "target_ber": "1e-12"}
        )
        assert status == 503 and payload["shed_level"] == "cached-only"
        # ... but a cached point is still served
        context.designer.design_point(get_code("h(7,4)"), 1e-12)
        status, payload, _ = _get(
            context, "/design", {"code": "h(7,4)", "target_ber": "1e-12"}
        )
        assert status == 200 and payload["cached"] is True

    def test_inflight_pressure_escalates(self, context):
        for _ in range(context.shedder.max_inflight):
            context.shedder.enter()
        assert context.shedder.level() == LoadShedder.CACHED_ONLY
        for _ in range(3 * context.shedder.max_inflight):
            context.shedder.enter()
        assert context.shedder.level() == LoadShedder.HEALTH_ONLY

    def test_health_only_answers_healthz_alone(self, context):
        context.shedder.draining = True
        assert context.shedder.level() == LoadShedder.HEALTH_ONLY
        assert _get(context, "/healthz")[0] == 200
        for path in ("/readyz", "/metricsz", "/jobs", "/design"):
            status, payload, _ = _get(context, path)
            assert status == 503, path
        status, payload, _ = _get(context, "/readyz")
        assert status == 503

    def test_readyz_reflects_drain(self, context):
        status, payload, _ = _get(context, "/readyz")
        assert status == 200 and payload["ready"] is True
        context.shedder.draining = True
        status, payload, _ = _get(context, "/readyz")
        assert status == 503

    def test_shed_metrics_are_counted(self, context):
        _fill_queue(context, 4)
        _post(context, "/jobs", {"experiment": "figure5"})
        counters = context.registry.snapshot()["counters"]
        assert counters.get("service.shed.request", 0) + counters.get(
            "service.shed.submit", 0
        ) >= 1

    def test_queue_full_submission_is_429(self, tmp_path):
        # a wide-open shedder so admission is decided by the queue itself
        queue = DurableJobQueue(str(tmp_path / "queue"), max_depth=1)
        shedder = LoadShedder(queue, max_inflight=8, shed_depth_fraction=1.0)
        context = ServiceContext(
            queue=queue,
            store=ResultsStore(str(tmp_path / "results")),
            supervisor=_AliveSupervisor(),
            designer=OpticalLinkDesigner(),
            config=DEFAULT_CONFIG,
            shedder=shedder,
        )
        queue.submit(Job(job_id="0" * 16, experiment="table1", options=None))
        # depth == max_depth -> CACHED_ONLY cuts the submission path already;
        # drop to a state where only QueueFullError can reject
        shedder.draining = False
        status, payload, headers = _post(context, "/jobs", {"experiment": "table1"})
        assert status in (429, 503)

    def test_shedder_configuration_validated(self, tmp_path):
        queue = DurableJobQueue(str(tmp_path))
        with pytest.raises(ConfigurationError):
            LoadShedder(queue, max_inflight=0)
        with pytest.raises(ConfigurationError):
            LoadShedder(queue, shed_depth_fraction=0.0)


class TestSelfHealing:
    def test_done_job_with_lost_result_is_resubmitted(self, context):
        status, payload, _ = _post(context, "/jobs", {"experiment": "table1"})
        job_id = payload["job_id"]
        context.queue.transition(job_id, JobState.RUNNING)
        context.queue.transition(job_id, JobState.DONE)
        # the result was never stored (or was quarantined): asking for it
        # re-queues the work instead of serving nothing forever
        status, payload, headers = _get(context, f"/jobs/{job_id}/result")
        assert status == 503 and headers["Retry-After"] == "5"
        assert context.queue.get(job_id).state == JobState.QUEUED

    def test_result_served_when_intact(self, context):
        status, payload, _ = _post(context, "/jobs", {"experiment": "table1"})
        job_id = payload["job_id"]
        context.queue.transition(job_id, JobState.RUNNING)
        context.queue.transition(job_id, JobState.DONE)
        context.store.put(job_id, {"text": "report", "rows": []})
        status, payload, _ = _get(context, f"/jobs/{job_id}/result")
        assert status == 200 and payload["result"]["text"] == "report"

    def test_duplicate_submission_of_done_job_is_cached(self, context):
        status, payload, _ = _post(context, "/jobs", {"experiment": "table1"})
        job_id = payload["job_id"]
        context.queue.transition(job_id, JobState.RUNNING)
        context.queue.transition(job_id, JobState.DONE)
        context.store.put(job_id, {"text": "report", "rows": []})
        status, payload, _ = _post(context, "/jobs", {"experiment": "table1"})
        assert status == 200 and payload["cached"] is True and not payload["created"]
