"""Discrete-time runtime simulation of managed optical transfers.

The paper argues the ECC/laser configuration should be chosen at run time by
an Operating-System-level manager according to each application's
requirements.  This module provides a small simulation loop where a workload
(a sequence of transfer requests with payload sizes, BER targets and
optional deadlines) is served by the :class:`OpticalLinkManager`; it records
per-transfer latency and energy so policies can be compared end to end —
this is the machinery behind the multimedia/real-time example.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable, List

from ..config import DEFAULT_CONFIG, PaperConfig
from ..exceptions import InfeasibleDesignError
from .manager import CommunicationRequest, LinkConfiguration, OpticalLinkManager

__all__ = ["TransferOutcome", "RuntimeSimulation"]


@dataclass(frozen=True)
class TransferOutcome:
    """Latency/energy results of one managed transfer."""

    request: CommunicationRequest
    configuration: LinkConfiguration | None
    start_time_s: float
    duration_s: float
    energy_j: float
    deadline_s: float | None
    rejected: bool = False

    @property
    def completion_time_s(self) -> float:
        """Absolute completion time of the transfer."""
        return self.start_time_s + self.duration_s

    @property
    def met_deadline(self) -> bool:
        """True when the transfer finished within its deadline (if any)."""
        if self.rejected:
            return False
        if self.deadline_s is None:
            return True
        return self.duration_s <= self.deadline_s


@dataclass
class RuntimeSimulation:
    """Serve a sequence of transfer requests through the link manager."""

    manager: OpticalLinkManager
    config: PaperConfig = field(default_factory=lambda: DEFAULT_CONFIG)

    def transfer_duration_s(self, configuration: LinkConfiguration, payload_bits: int) -> float:
        """Channel-busy time of a payload under a configuration.

        The payload is stretched by the coding overhead and streamed over
        the channel's wavelengths at the modulation rate.
        """
        coded_bits = payload_bits * configuration.communication_time
        channel_rate = self.config.num_wavelengths * self.config.modulation_rate_hz
        return coded_bits / channel_rate

    def transfer_energy_j(self, configuration: LinkConfiguration, duration_s: float) -> float:
        """Energy drawn by the whole waveguide during a transfer."""
        channel_power = configuration.channel_power_w * self.config.num_wavelengths
        return channel_power * duration_s

    def run(
        self,
        requests: Iterable[tuple[CommunicationRequest, float | None]],
    ) -> List[TransferOutcome]:
        """Serve requests back-to-back on a single shared channel.

        ``requests`` yields ``(request, deadline_s)`` pairs; a ``None``
        deadline means best effort.  Requests the manager cannot satisfy are
        recorded as rejected with zero duration and energy.
        """
        outcomes: List[TransferOutcome] = []
        clock_s = 0.0
        for request, deadline_s in requests:
            try:
                configuration = self.manager.configure(request)
            except InfeasibleDesignError:
                outcomes.append(
                    TransferOutcome(
                        request=request,
                        configuration=None,
                        start_time_s=clock_s,
                        duration_s=0.0,
                        energy_j=0.0,
                        deadline_s=deadline_s,
                        rejected=True,
                    )
                )
                continue
            duration = self.transfer_duration_s(configuration, request.payload_bits)
            energy = self.transfer_energy_j(configuration, duration)
            outcomes.append(
                TransferOutcome(
                    request=request,
                    configuration=configuration,
                    start_time_s=clock_s,
                    duration_s=duration,
                    energy_j=energy,
                    deadline_s=deadline_s,
                )
            )
            clock_s += duration
            self.manager.release(request.source, request.destination)
        return outcomes

    @staticmethod
    def total_energy_j(outcomes: Iterable[TransferOutcome]) -> float:
        """Total energy over a set of outcomes."""
        return sum(o.energy_j for o in outcomes)

    @staticmethod
    def deadline_miss_rate(outcomes: Iterable[TransferOutcome]) -> float:
        """Fraction of transfers that missed their deadline or were rejected."""
        outcome_list = list(outcomes)
        if not outcome_list:
            return 0.0
        missed = sum(1 for o in outcome_list if not o.met_deadline)
        return missed / len(outcome_list)
