"""The linter must run clean on this repository itself.

This is the acceptance test for the whole exercise: every rule the linter
enforces is an invariant the codebase actually satisfies.  A change that
introduces a wall-clock read into the simulator, drops a lock around
shared service state, or adds a slotless class to a hot module fails here
(and in the CI static-analysis job) before review.
"""

from __future__ import annotations

import os

from repro.analysis import DEFAULT_CONFIG, lint_paths
from repro.analysis.cli import main

REPO_ROOT = os.path.dirname(os.path.dirname(os.path.dirname(os.path.abspath(__file__))))
SRC = os.path.join(REPO_ROOT, "src")


def test_src_tree_is_lint_clean():
    run = lint_paths([SRC], config=DEFAULT_CONFIG)
    assert run.files_checked > 100, "the walker must actually traverse src/"
    messages = [
        f"{finding.location}: {finding.code} {finding.message}"
        for finding in run.findings
    ]
    assert run.findings == [], "\n".join(messages)


def test_cli_strict_run_exits_zero(capsys, monkeypatch):
    monkeypatch.chdir(REPO_ROOT)
    assert main(["src", "--strict"]) == 0
    assert "0 finding(s)" in capsys.readouterr().out
