"""End-to-end tests for the ``repro-lint`` command line interface.

Exit codes are part of the contract (CI scripts branch on them), so they
are pinned here: 0 clean, 1 findings (or strict + stale baseline),
2 usage/configuration errors.
"""

from __future__ import annotations

import json
import os

import pytest

from repro.analysis.cli import main

DIRTY = "import random\nvalue = random.random()\n"
CLEAN = "def double(x):\n    return 2 * x\n"


@pytest.fixture()
def sim_tree(tmp_path, monkeypatch):
    """A tiny checkout with one dirty and one clean deterministic module."""
    package = tmp_path / "repro" / "netsim"
    package.mkdir(parents=True)
    (package / "dirty.py").write_text(DIRTY, encoding="utf-8")
    (package / "clean.py").write_text(CLEAN, encoding="utf-8")
    monkeypatch.chdir(tmp_path)
    return tmp_path


class TestExitCodes:
    def test_clean_tree_exits_zero(self, sim_tree, capsys):
        assert main([os.path.join("repro", "netsim", "clean.py")]) == 0
        assert "0 finding(s)" in capsys.readouterr().out

    def test_findings_exit_one(self, sim_tree, capsys):
        assert main(["repro"]) == 1
        out = capsys.readouterr().out
        assert "RPR101" in out
        assert "repro/netsim/dirty.py:2" in out

    def test_missing_path_exits_two(self, sim_tree, capsys):
        with pytest.raises(SystemExit) as excinfo:
            main(["no/such/dir"])
        assert excinfo.value.code == 2

    def test_bad_config_exits_two(self, sim_tree, capsys):
        (sim_tree / "lint.json").write_text(json.dumps({"nope": []}), encoding="utf-8")
        assert main(["repro", "--config", "lint.json"]) == 2
        assert "unknown lint config key" in capsys.readouterr().err


class TestJsonReport:
    def test_document_shape(self, sim_tree, capsys):
        assert main(["repro", "--json"]) == 1
        document = json.loads(capsys.readouterr().out)
        assert document["version"] == 1
        assert document["files_checked"] == 2
        (finding,) = document["findings"]
        assert finding["code"] == "RPR101"
        assert finding["file"] == "repro/netsim/dirty.py"
        assert finding["line"] == 2
        assert document["baselined"] == 0
        assert document["stale_baseline"] == []


class TestBaselineFlow:
    def test_write_then_lint_clean_then_strict_stale(self, sim_tree, capsys):
        # 1. Grandfather the current findings.
        assert main(["repro", "--write-baseline"]) == 0
        assert os.path.exists(".repro-lint-baseline.json")
        capsys.readouterr()
        # 2. The default run now picks the baseline up and passes.
        assert main(["repro"]) == 0
        assert "(1 baselined" in capsys.readouterr().out
        # 3. --no-baseline reveals the grandfathered finding again.
        assert main(["repro", "--no-baseline"]) == 1
        capsys.readouterr()
        # 4. Fix the violation: non-strict still passes, strict fails on
        # the now-stale entry until the baseline is regenerated.
        dirty = sim_tree / "repro" / "netsim" / "dirty.py"
        dirty.write_text(CLEAN, encoding="utf-8")
        assert main(["repro"]) == 0
        assert main(["repro", "--strict"]) == 1
        assert "stale baseline entry" in capsys.readouterr().out
        assert main(["repro", "--write-baseline"]) == 0
        capsys.readouterr()
        assert main(["repro", "--strict"]) == 0

    def test_explicit_missing_baseline_is_an_error(self, sim_tree):
        with pytest.raises(SystemExit) as excinfo:
            main(["repro", "--baseline", "absent.json"])
        assert excinfo.value.code == 2


class TestFlags:
    def test_select_and_ignore(self, sim_tree, capsys):
        assert main(["repro", "--select", "RPR103"]) == 0
        capsys.readouterr()
        assert main(["repro", "--ignore", "RPR101"]) == 0

    def test_list_rules_prints_catalogue(self, sim_tree, capsys):
        assert main(["--list-rules"]) == 0
        out = capsys.readouterr().out
        for code in ("RPR101", "RPR102", "RPR103", "RPR104",
                     "RPR201", "RPR202", "RPR301", "RPR302", "RPR303", "RPR304"):
            assert code in out

    def test_module_entry_point_matches_cli(self, sim_tree):
        from repro.analysis.__main__ import main as module_main

        assert module_main is main
