"""Packet and message containers used by the message-level simulator."""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from ..coding.matrices import as_gf2
from ..exceptions import ConfigurationError

__all__ = ["Packet", "Message"]


@dataclass(frozen=True)
class Packet:
    """A fixed-size unit of payload travelling on the optical channel."""

    source: int
    destination: int
    payload_bits: np.ndarray
    sequence_number: int = 0

    def __post_init__(self) -> None:
        object.__setattr__(self, "payload_bits", as_gf2(self.payload_bits).ravel())
        if self.payload_bits.size == 0:
            raise ConfigurationError("a packet must carry at least one bit")
        if self.source == self.destination:
            raise ConfigurationError("source and destination must differ")

    @property
    def size_bits(self) -> int:
        """Payload size in bits."""
        return int(self.payload_bits.size)


@dataclass
class Message:
    """A multi-packet message with bookkeeping for reassembly."""

    source: int
    destination: int
    packets: list[Packet] = field(default_factory=list)

    def __post_init__(self) -> None:
        if self.source == self.destination:
            raise ConfigurationError("source and destination must differ")
        for packet in self.packets:
            self._check_packet(packet)

    def _check_packet(self, packet: Packet) -> None:
        if packet.source != self.source or packet.destination != self.destination:
            raise ConfigurationError("packet endpoints do not match the message endpoints")

    def append(self, packet: Packet) -> None:
        """Add one packet to the message."""
        self._check_packet(packet)
        self.packets.append(packet)

    @property
    def size_bits(self) -> int:
        """Total payload size of the message."""
        return sum(packet.size_bits for packet in self.packets)

    def payload(self) -> np.ndarray:
        """Concatenated payload of every packet, in sequence order."""
        if not self.packets:
            return np.zeros(0, dtype=np.uint8)
        ordered = sorted(self.packets, key=lambda p: p.sequence_number)
        return np.concatenate([packet.payload_bits for packet in ordered])

    @classmethod
    def from_bits(
        cls, source: int, destination: int, bits, *, packet_size_bits: int = 64
    ) -> "Message":
        """Split a bit vector into packets of ``packet_size_bits`` (zero padded)."""
        if packet_size_bits < 1:
            raise ConfigurationError("packet size must be positive")
        stream = as_gf2(bits).ravel()
        if stream.size == 0:
            raise ConfigurationError("a message must carry at least one bit")
        remainder = stream.size % packet_size_bits
        if remainder:
            padding = np.zeros(packet_size_bits - remainder, dtype=np.uint8)
            stream = np.concatenate([stream, padding])
        message = cls(source=source, destination=destination)
        for index, start in enumerate(range(0, stream.size, packet_size_bits)):
            message.append(
                Packet(
                    source=source,
                    destination=destination,
                    payload_bits=stream[start : start + packet_size_bits],
                    sequence_number=index,
                )
            )
        return message
