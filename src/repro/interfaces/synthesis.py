"""Synthesis-style reporting of the interfaces (reproduces Table I).

:func:`synthesize_interfaces` assembles the paper's transmitter and receiver
(either from the Table I library or from the parametric estimators) and
produces a :class:`SynthesisReport` that can be rendered as the same table
the paper prints: per-block area, critical path, static and dynamic power,
plus per-mode totals and slack against the target clock periods.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List

from ..config import DEFAULT_CONFIG, PaperConfig
from .receiver import ReceiverInterface
from .techlib import BlockCharacterisation, FDSOI_28NM, TechnologyLibrary
from .transmitter import H71_MODE, H74_MODE, UNCODED_MODE, TransmitterInterface

__all__ = ["SynthesisReport", "synthesize_interfaces", "ModeTotals", "PAPER_MODES"]

PAPER_MODES = (H74_MODE, H71_MODE, UNCODED_MODE)
"""Communication modes reported in Table I, in the paper's row order."""


@dataclass(frozen=True)
class ModeTotals:
    """Aggregated figures for one communication mode of one interface side."""

    mode: str
    dynamic_power_uw: float
    total_power_uw: float
    critical_path_ps: float


@dataclass
class SynthesisReport:
    """Full synthesis report of the transmitter/receiver pair."""

    technology: str
    config: PaperConfig
    transmitter_blocks: Dict[str, BlockCharacterisation]
    receiver_blocks: Dict[str, BlockCharacterisation]
    transmitter_area_um2: float
    receiver_area_um2: float
    transmitter_modes: List[ModeTotals] = field(default_factory=list)
    receiver_modes: List[ModeTotals] = field(default_factory=list)

    # ------------------------------------------------------------------ queries
    def mode_totals(self, side: str, mode: str) -> ModeTotals:
        """Totals for one side ('transmitter'/'receiver') and mode."""
        entries = self.transmitter_modes if side == "transmitter" else self.receiver_modes
        for entry in entries:
            if entry.mode == mode:
                return entry
        raise KeyError(f"mode {mode!r} not present on side {side!r}")

    def interface_power_w(self, mode: str) -> float:
        """Total transmitter + receiver power for one mode, in watts."""
        tx = self.mode_totals("transmitter", mode).total_power_uw
        rx = self.mode_totals("receiver", mode).total_power_uw
        return (tx + rx) * 1e-6

    def slack_ps(self, side: str, mode: str) -> float:
        """Timing slack of a mode against its clock.

        Codec blocks run at the IP clock while SER/DES run at the modulation
        clock; the paper reports positive slack for every block, so the
        relevant constraint for the aggregated path is the IP clock period
        (codec paths dominate at 210-570 ps).
        """
        totals = self.mode_totals(side, mode)
        ip_period_ps = 1e12 / self.config.ip_clock_hz
        return ip_period_ps - totals.critical_path_ps

    # ------------------------------------------------------------------ rendering
    def to_rows(self) -> List[dict]:
        """Flatten the report into row dictionaries (one per block and total)."""
        rows: List[dict] = []
        for side, blocks, area, modes in (
            ("transmitter", self.transmitter_blocks, self.transmitter_area_um2, self.transmitter_modes),
            ("receiver", self.receiver_blocks, self.receiver_area_um2, self.receiver_modes),
        ):
            for name, block in blocks.items():
                rows.append(
                    {
                        "side": side,
                        "block": name,
                        "area_um2": block.area_um2,
                        "critical_path_ps": block.critical_path_ps,
                        "static_power_nw": block.static_power_nw,
                        "dynamic_power_uw": block.dynamic_power_uw,
                        "total_power_uw": block.total_power_uw,
                    }
                )
            for totals in modes:
                rows.append(
                    {
                        "side": side,
                        "block": f"Total, {totals.mode} com.",
                        "area_um2": area,
                        "critical_path_ps": totals.critical_path_ps,
                        "static_power_nw": float("nan"),
                        "dynamic_power_uw": totals.dynamic_power_uw,
                        "total_power_uw": totals.total_power_uw,
                    }
                )
        return rows

    def render_text(self) -> str:
        """Render the report as a fixed-width text table (Table I style)."""
        header = (
            f"{'side':<12} {'block':<28} {'area um2':>10} {'CP ps':>8} "
            f"{'static nW':>10} {'dyn uW':>8} {'total uW':>9}"
        )
        lines = [header, "-" * len(header)]
        for row in self.to_rows():
            static = row["static_power_nw"]
            static_text = f"{static:10.1f}" if static == static else " " * 10
            lines.append(
                f"{row['side']:<12} {row['block']:<28} {row['area_um2']:10.0f} "
                f"{row['critical_path_ps']:8.0f} {static_text} "
                f"{row['dynamic_power_uw']:8.2f} {row['total_power_uw']:9.2f}"
            )
        return "\n".join(lines)


def synthesize_interfaces(
    *,
    config: PaperConfig = DEFAULT_CONFIG,
    tech: TechnologyLibrary = FDSOI_28NM,
    parametric: bool = False,
) -> SynthesisReport:
    """Build the transmitter/receiver pair and produce the Table I report.

    With ``parametric=False`` (default) the blocks come straight from the
    Table I characterisation; with ``parametric=True`` they are re-estimated
    from the calibrated per-gate constants, which is how users explore other
    codes or bus widths.
    """
    if parametric:
        from ..coding.hamming import HammingCode, ShortenedHammingCode

        codes = [HammingCode(3), ShortenedHammingCode(config.ip_bus_width_bits)]
        transmitter = TransmitterInterface.from_codes(
            codes,
            ip_bus_width_bits=config.ip_bus_width_bits,
            ip_clock_hz=config.ip_clock_hz,
            modulation_rate_hz=config.modulation_rate_hz,
            tech=tech,
        )
        receiver = ReceiverInterface.from_codes(
            codes,
            ip_bus_width_bits=config.ip_bus_width_bits,
            ip_clock_hz=config.ip_clock_hz,
            modulation_rate_hz=config.modulation_rate_hz,
            tech=tech,
        )
        modes = [codes[0].name, codes[1].name, UNCODED_MODE]
    else:
        transmitter = TransmitterInterface.paper_default(tech)
        receiver = ReceiverInterface.paper_default(tech)
        modes = list(PAPER_MODES)

    def totals_for(interface) -> List[ModeTotals]:
        result = []
        for mode in modes:
            result.append(
                ModeTotals(
                    mode=mode,
                    dynamic_power_uw=interface.dynamic_power_uw(mode),
                    total_power_uw=interface.total_power_uw(mode),
                    critical_path_ps=interface.critical_path_ps(mode),
                )
            )
        return result

    return SynthesisReport(
        technology=tech.name,
        config=config,
        transmitter_blocks=transmitter.as_table(),
        receiver_blocks=receiver.as_table(),
        transmitter_area_um2=transmitter.total_area_um2,
        receiver_area_um2=receiver.total_area_um2,
        transmitter_modes=totals_for(transmitter),
        receiver_modes=totals_for(receiver),
    )
