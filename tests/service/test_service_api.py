"""End-to-end tests of the simulation service over real HTTP.

An in-process :class:`~repro.service.server.SimulationService` on an
ephemeral port, driven with ``urllib`` — the full submit → poll → fetch
flow, idempotent resubmission, queue-full backpressure and restart
recovery from the same data directory.

The supervisor forks its job workers, so the tiny ``svcmini`` experiment
registered at import time is visible inside them (fork start method, same
trick as the orchestrator's fault-injection tests).
"""

from __future__ import annotations

import json
import multiprocessing
import time
import urllib.error
import urllib.request

import pytest

from repro.experiments.orchestrator import (
    GridFunctions,
    register_experiment,
    run_experiment,
)
from repro.service import ServiceConfig, SimulationService
from repro.service.models import JobState

pytestmark = pytest.mark.skipif(
    "fork" not in multiprocessing.get_all_start_methods(),
    reason="service workers require the fork start method",
)

EXPERIMENT = "svcmini"


def _shards(config, options):
    options = options or {}
    return [{"index": index} for index in range(int(options.get("num_shards", 3)))]


def _run_shard(params, config):
    return {"index": params["index"], "value": 10 + params["index"]}


def _merge(payloads, config, options):
    rows = [dict(payload) for payload in payloads]
    text = "values: " + ", ".join(str(row["value"]) for row in rows)
    return text, rows


register_experiment(EXPERIMENT, GridFunctions(_shards, _run_shard, _merge), replace=True)


def request(url, method="GET", body=None, timeout=30):
    """One JSON request; returns ``(status, payload, headers)``, never raises."""
    data = json.dumps(body).encode("utf-8") if body is not None else None
    req = urllib.request.Request(
        url,
        data=data,
        method=method,
        headers={"Content-Type": "application/json"} if data else {},
    )
    try:
        with urllib.request.urlopen(req, timeout=timeout) as response:
            return response.status, json.loads(response.read().decode()), dict(
                response.headers
            )
    except urllib.error.HTTPError as error:
        return error.code, json.loads(error.read().decode()), dict(error.headers)


def poll_until_terminal(base, job_id, deadline_s=60.0):
    deadline = time.monotonic() + deadline_s
    while time.monotonic() < deadline:
        status, payload, _ = request(f"{base}/jobs/{job_id}")
        assert status == 200, payload
        # "failed" is transient: the supervisor immediately re-queues the
        # job (backoff) or marks it dead; only done/dead are terminal
        if payload["state"] in (JobState.DONE, JobState.DEAD):
            return payload
        time.sleep(0.05)
    raise AssertionError(f"job {job_id} never reached a terminal state")


@pytest.fixture
def service(tmp_path):
    svc = SimulationService(data_dir=str(tmp_path / "data"))
    svc.start()
    yield svc
    svc.stop(drain_timeout_s=10.0)


class TestJobFlow:
    def test_submit_poll_fetch(self, service):
        base = service.url
        status, payload, _ = request(
            f"{base}/jobs", "POST", {"experiment": EXPERIMENT, "options": {}}
        )
        assert status == 202 and payload["created"] is True
        job_id = payload["job_id"]

        final = poll_until_terminal(base, job_id)
        assert final["state"] == JobState.DONE and final["result_ready"] is True

        status, payload, _ = request(f"{base}/jobs/{job_id}/result")
        assert status == 200
        expected_text, expected_rows = run_experiment(EXPERIMENT, options={})
        assert payload["result"]["text"] == expected_text
        assert payload["result"]["rows"] == expected_rows

    def test_duplicate_submission_joins_then_caches(self, service):
        base = service.url
        body = {"experiment": EXPERIMENT, "options": {"num_shards": 4}}
        status, first, _ = request(f"{base}/jobs", "POST", body)
        assert status == 202
        status, second, _ = request(f"{base}/jobs", "POST", body)
        assert status == 200
        assert second["job_id"] == first["job_id"] and second["created"] is False

        poll_until_terminal(base, first["job_id"])
        status, third, _ = request(f"{base}/jobs", "POST", body)
        assert status == 200 and third["cached"] is True

        # a different grid is a different job
        other = {"experiment": EXPERIMENT, "options": {"num_shards": 5}}
        status, fourth, _ = request(f"{base}/jobs", "POST", other)
        assert status == 202 and fourth["job_id"] != first["job_id"]
        poll_until_terminal(base, fourth["job_id"])

    def test_cancel_queued_job(self, tmp_path):
        # no supervisor: submissions stay queued so cancellation is race-free
        svc = SimulationService(data_dir=str(tmp_path / "data"), supervise=False)
        svc.start()
        try:
            base = svc.url
            status, payload, _ = request(
                f"{base}/jobs", "POST", {"experiment": EXPERIMENT}
            )
            job_id = payload["job_id"]
            status, payload, _ = request(f"{base}/jobs/{job_id}/cancel", "POST")
            assert status == 503  # cancel needs a supervisor
        finally:
            svc.stop(drain_timeout_s=5.0)

    def test_health_and_metrics(self, service):
        base = service.url
        assert request(f"{base}/healthz")[0] == 200
        status, payload, _ = request(f"{base}/readyz")
        assert status == 200 and payload["ready"] is True
        status, payload, _ = request(f"{base}/metricsz")
        assert status == 200 and payload["shed_level"] == "normal"
        assert payload["queue"] == {state: 0 for state in JobState.ALL}


class TestBackpressure:
    def test_queue_full_submission_gets_429_with_retry_after(self, tmp_path):
        svc = SimulationService(
            data_dir=str(tmp_path / "data"),
            supervise=False,  # nothing drains the queue
            service_config=ServiceConfig(max_queue_depth=1),
        )
        svc.start()
        try:
            base = svc.url
            status, payload, _ = request(
                f"{base}/jobs", "POST", {"experiment": EXPERIMENT, "options": {}}
            )
            assert status == 202
            status, payload, headers = request(
                f"{base}/jobs",
                "POST",
                {"experiment": EXPERIMENT, "options": {"num_shards": 7}},
            )
            assert status == 429
            assert int(headers["Retry-After"]) >= 1
            # the already-admitted job is still pollable while shedding
            first_id = request(f"{base}/jobs")[1]["jobs"][0]["job_id"]
            assert request(f"{base}/jobs/{first_id}")[0] == 200
        finally:
            svc.stop(drain_timeout_s=5.0)


class TestRestartRecovery:
    def test_jobs_survive_a_restart(self, tmp_path):
        data_dir = str(tmp_path / "data")
        # first life: accept a job but never run it (no supervisor)
        first = SimulationService(data_dir=data_dir, supervise=False)
        first.start()
        try:
            status, payload, _ = request(
                f"{first.url}/jobs", "POST", {"experiment": EXPERIMENT, "options": {}}
            )
            assert status == 202
            job_id = payload["job_id"]
        finally:
            first.stop(drain_timeout_s=5.0)

        # second life: the queued job is recovered and completed
        second = SimulationService(data_dir=data_dir)
        second.start()
        try:
            base = second.url
            final = poll_until_terminal(base, job_id)
            assert final["state"] == JobState.DONE
            status, payload, _ = request(f"{base}/jobs/{job_id}/result")
            assert status == 200
            expected_text, _ = run_experiment(EXPERIMENT, options={})
            assert payload["result"]["text"] == expected_text
        finally:
            second.stop(drain_timeout_s=10.0)

    def test_done_results_survive_a_restart(self, tmp_path):
        data_dir = str(tmp_path / "data")
        first = SimulationService(data_dir=data_dir)
        first.start()
        try:
            status, payload, _ = request(
                f"{first.url}/jobs", "POST", {"experiment": EXPERIMENT, "options": {}}
            )
            job_id = payload["job_id"]
            poll_until_terminal(first.url, job_id)
        finally:
            first.stop(drain_timeout_s=10.0)

        second = SimulationService(data_dir=data_dir)
        second.start()
        try:
            status, payload, _ = request(f"{second.url}/jobs/{job_id}")
            assert status == 200 and payload["state"] == JobState.DONE
            status, payload, _ = request(f"{second.url}/jobs/{job_id}/result")
            assert status == 200
        finally:
            second.stop(drain_timeout_s=5.0)
