"""Docs check: the fenced Python snippets in README.md must run cleanly.

Keeps the quickstart honest — every ``` ```python ``` block of the README
is extracted and executed (each in a fresh namespace), so an API rename
that would break the documented entry points fails the suite instead of
rotting silently.  CI runs this file as its dedicated docs gate.
"""

from __future__ import annotations

import os
import re

import pytest

_README = os.path.join(os.path.dirname(os.path.dirname(os.path.abspath(__file__))), "README.md")
_FENCE = re.compile(r"```python\n(.*?)```", re.DOTALL)


def _snippets() -> list[str]:
    with open(_README, encoding="utf-8") as handle:
        return _FENCE.findall(handle.read())


def test_readme_has_python_snippets():
    assert len(_snippets()) >= 2, "README.md lost its quickstart snippets"


@pytest.mark.parametrize("index", range(len(_snippets())))
def test_readme_snippet_executes(index):
    snippet = _snippets()[index]
    exec(compile(snippet, f"README.md:snippet[{index}]", "exec"), {"__name__": "__readme__"})
