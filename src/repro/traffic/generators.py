"""Stochastic traffic generators.

Each generator yields :class:`TrafficRequest` objects (source, destination,
payload size, arrival time, BER requirement) that the manager/runtime
simulation can consume directly.  Arrival processes are Poisson with a
configurable mean rate; destinations follow the generator's spatial pattern.

Every generator accepts the shared seeding vocabulary: pass either a
ready-made ``rng`` or a ``seed`` (int or :class:`numpy.random.SeedSequence`,
resolved through :func:`repro.coding.montecarlo.resolve_rng`), so sharded
network sweeps can rebuild a generator's stream from its grid position.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator

import numpy as np

from ..coding.montecarlo import resolve_rng
from ..exceptions import ConfigurationError

__all__ = [
    "TrafficRequest",
    "UniformTrafficGenerator",
    "HotspotTrafficGenerator",
    "BurstyTrafficGenerator",
]


@dataclass(frozen=True)
class TrafficRequest:
    """A single communication request emitted by a traffic generator."""

    arrival_time_s: float
    source: int
    destination: int
    payload_bits: int
    target_ber: float
    deadline_s: float | None = None

    def __post_init__(self) -> None:
        if self.source == self.destination:
            raise ConfigurationError("source and destination must differ")
        if self.payload_bits <= 0:
            raise ConfigurationError("payload must contain at least one bit")
        if not 0.0 < self.target_ber < 0.5:
            raise ConfigurationError("target BER must lie in (0, 0.5)")


class _BaseGenerator:
    """Shared plumbing of the stochastic generators."""

    def __init__(
        self,
        num_onis: int,
        *,
        mean_request_rate_hz: float,
        payload_bits: int,
        target_ber: float,
        rng: np.random.Generator | None = None,
        seed: int | np.random.SeedSequence | None = None,
    ):
        if num_onis < 2:
            raise ConfigurationError("traffic needs at least two ONIs")
        if mean_request_rate_hz <= 0:
            raise ConfigurationError("request rate must be positive")
        if payload_bits <= 0:
            raise ConfigurationError("payload size must be positive")
        self._num_onis = num_onis
        self._rate = mean_request_rate_hz
        self._payload_bits = payload_bits
        self._target_ber = target_ber
        self._rng = resolve_rng(rng, seed)

    def _next_arrival(self, now_s: float) -> float:
        return now_s + float(self._rng.exponential(1.0 / self._rate))

    def _pick_destination(self, source: int) -> int:
        raise NotImplementedError

    def _payload(self) -> int:
        return self._payload_bits

    def _deadline(self) -> float | None:
        return None

    def generate(self, num_requests: int, *, start_time_s: float = 0.0) -> Iterator[TrafficRequest]:
        """Yield ``num_requests`` requests with Poisson arrivals."""
        if num_requests < 0:
            raise ConfigurationError("number of requests cannot be negative")
        now = start_time_s
        for _ in range(num_requests):
            now = self._next_arrival(now)
            source = int(self._rng.integers(0, self._num_onis))
            destination = self._pick_destination(source)
            yield TrafficRequest(
                arrival_time_s=now,
                source=source,
                destination=destination,
                payload_bits=self._payload(),
                target_ber=self._target_ber,
                deadline_s=self._deadline(),
            )


class UniformTrafficGenerator(_BaseGenerator):
    """Uniform random traffic: every other ONI is an equally likely destination."""

    def __init__(
        self,
        num_onis: int,
        *,
        mean_request_rate_hz: float = 1e6,
        payload_bits: int = 512,
        target_ber: float = 1e-9,
        rng: np.random.Generator | None = None,
        seed: int | np.random.SeedSequence | None = None,
    ):
        super().__init__(
            num_onis,
            mean_request_rate_hz=mean_request_rate_hz,
            payload_bits=payload_bits,
            target_ber=target_ber,
            rng=rng,
            seed=seed,
        )

    def _pick_destination(self, source: int) -> int:
        destination = int(self._rng.integers(0, self._num_onis - 1))
        if destination >= source:
            destination += 1
        return destination


class HotspotTrafficGenerator(_BaseGenerator):
    """Hotspot traffic: a fraction of requests target one hot ONI (e.g. a memory controller)."""

    def __init__(
        self,
        num_onis: int,
        *,
        hotspot: int = 0,
        hotspot_fraction: float = 0.5,
        mean_request_rate_hz: float = 1e6,
        payload_bits: int = 512,
        target_ber: float = 1e-9,
        rng: np.random.Generator | None = None,
        seed: int | np.random.SeedSequence | None = None,
    ):
        super().__init__(
            num_onis,
            mean_request_rate_hz=mean_request_rate_hz,
            payload_bits=payload_bits,
            target_ber=target_ber,
            rng=rng,
            seed=seed,
        )
        if not 0 <= hotspot < num_onis:
            raise ConfigurationError("hotspot index outside the ONI range")
        if not 0.0 <= hotspot_fraction <= 1.0:
            raise ConfigurationError("hotspot fraction must lie in [0, 1]")
        self._hotspot = hotspot
        self._hotspot_fraction = hotspot_fraction

    def _pick_destination(self, source: int) -> int:
        if source != self._hotspot and self._rng.random() < self._hotspot_fraction:
            return self._hotspot
        destination = int(self._rng.integers(0, self._num_onis - 1))
        if destination >= source:
            destination += 1
        return destination


class BurstyTrafficGenerator(_BaseGenerator):
    """Multimedia-like traffic: large bursty payloads with relaxed BER and soft deadlines."""

    def __init__(
        self,
        num_onis: int,
        *,
        mean_request_rate_hz: float = 1e5,
        frame_bits: int = 64 * 1024,
        burstiness: float = 4.0,
        target_ber: float = 1e-6,
        frame_deadline_s: float | None = 1.0 / 30.0,
        rng: np.random.Generator | None = None,
        seed: int | np.random.SeedSequence | None = None,
    ):
        super().__init__(
            num_onis,
            mean_request_rate_hz=mean_request_rate_hz,
            payload_bits=frame_bits,
            target_ber=target_ber,
            rng=rng,
            seed=seed,
        )
        if burstiness < 1.0:
            raise ConfigurationError("burstiness must be at least 1.0")
        self._burstiness = burstiness
        self._frame_deadline_s = frame_deadline_s

    def _pick_destination(self, source: int) -> int:
        destination = int(self._rng.integers(0, self._num_onis - 1))
        if destination >= source:
            destination += 1
        return destination

    def _payload(self) -> int:
        # Frame sizes vary around the nominal value with a heavy-ish tail.
        factor = float(self._rng.gamma(shape=self._burstiness, scale=1.0 / self._burstiness))
        return max(64, int(self._payload_bits * factor))

    def _deadline(self) -> float | None:
        return self._frame_deadline_s
