"""Inter-channel crosstalk model for the MWSR reader.

The paper takes its crosstalk estimate from the transmission model of Li et
al. [8], which accounts for "the distance between signal and MR resonant
wavelengths".  We reproduce that mechanism with the Lorentzian ring model:
the drop ring of channel ``i`` at the reader is resonant at wavelength
``lambda_i`` but still couples a small fraction of every other channel
``j != i`` — given by the Lorentzian roll-off evaluated at the grid
detuning — onto photodetector ``i``.  The worst case assumes every other
channel carries a '1' at full power simultaneously, which is what Eq. 4's
``OPcrosstalk`` represents.

Crosstalk therefore scales with the per-channel optical power: the model
returns a *crosstalk ratio* (crosstalk power divided by per-channel received
power) so the link solver can apply it at any laser operating point.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..exceptions import ConfigurationError
from .microring import MicroringResonator
from .wdm import WDMGrid

__all__ = ["CrosstalkModel"]


@dataclass(frozen=True)
class CrosstalkModel:
    """Worst-case adjacent/non-adjacent channel crosstalk at the reader."""

    grid: WDMGrid
    drop_ring: MicroringResonator

    def __post_init__(self) -> None:
        if self.grid.num_channels < 1:
            raise ConfigurationError("crosstalk model needs at least one channel")

    def crosstalk_ratio(self, victim_channel: int) -> float:
        """Total worst-case crosstalk ratio seen by one channel's detector.

        Defined as ``sum_{j != i} Tdrop(lambda_j) / Tdrop(lambda_i)``: the
        fraction of each aggressor's received power that leaks through the
        victim's drop ring, normalised to the victim's own drop efficiency so
        the ratio can be multiplied by the victim's received signal power.
        """
        victim_wavelength = self.grid.wavelength(victim_channel)
        ring = self.drop_ring.detuned_copy(victim_wavelength)
        own = ring.drop_transmission(victim_wavelength)
        if own <= 0:
            raise ConfigurationError("victim drop transmission must be positive")
        total = 0.0
        for other in range(self.grid.num_channels):
            if other == victim_channel:
                continue
            total += float(ring.drop_transmission(self.grid.wavelength(other)))
        return total / float(own)

    def worst_case_ratio(self) -> float:
        """Crosstalk ratio of the most-affected channel (a central one)."""
        return max(
            self.crosstalk_ratio(channel) for channel in range(self.grid.num_channels)
        )

    def ratios(self) -> np.ndarray:
        """Crosstalk ratios of every channel."""
        return np.array(
            [self.crosstalk_ratio(channel) for channel in range(self.grid.num_channels)]
        )

    def crosstalk_power_w(self, victim_channel: int, per_channel_power_w: float) -> float:
        """Absolute crosstalk power for a given per-channel received power."""
        if per_channel_power_w < 0:
            raise ConfigurationError("per-channel power cannot be negative")
        return self.crosstalk_ratio(victim_channel) * per_channel_power_w

    @classmethod
    def from_config(cls, config) -> "CrosstalkModel":
        """Build the model from a :class:`repro.config.PaperConfig`."""
        grid = WDMGrid.from_config(config)
        ring = MicroringResonator(
            resonance_wavelength_m=config.center_wavelength_m,
            quality_factor=config.ring_quality_factor,
            extinction_ratio_db=config.extinction_ratio_db,
            through_loss_db=config.ring_through_loss_db,
            drop_loss_db=config.ring_drop_loss_db,
            drive_power_w=config.modulator_power_w,
        )
        return cls(grid=grid, drop_ring=ring)
