"""Error-injection models for the bit-level simulators.

Two models are provided:

* :class:`IndependentErrorModel` flips each bit independently with a fixed
  probability — the stochastic twin of the analytic BSC used throughout the
  paper's equations.
* :class:`BurstErrorModel` produces two-state (Gilbert-Elliott style) error
  bursts: a low error probability in the "good" state and a high one in the
  "bad" state, with geometric sojourn times.  Bursts defeat single-error-
  correcting Hamming codes unless an interleaver spreads them, which is the
  behaviour the interleaving experiments demonstrate.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..coding.matrices import as_gf2
from ..exceptions import ConfigurationError

__all__ = ["IndependentErrorModel", "BurstErrorModel"]


@dataclass
class IndependentErrorModel:
    """Independent (memoryless) bit flips with a fixed probability."""

    bit_error_probability: float
    rng: np.random.Generator | None = None

    def __post_init__(self) -> None:
        if not 0.0 <= self.bit_error_probability <= 1.0:
            raise ConfigurationError("bit error probability must lie in [0, 1]")
        if self.rng is None:
            self.rng = np.random.default_rng()

    def error_pattern(self, num_bits: int) -> np.ndarray:
        """A 0/1 vector with ones at the positions to flip."""
        if num_bits < 0:
            raise ConfigurationError("number of bits cannot be negative")
        return (self.rng.random(num_bits) < self.bit_error_probability).astype(np.uint8)

    def apply(self, bits) -> np.ndarray:
        """Return a copy of ``bits`` with the error pattern applied.

        Shape-preserving: a ``(B, n)`` block matrix comes back as a
        ``(B, n)`` matrix with one flat random draw for the whole batch.
        """
        stream = as_gf2(bits)
        return stream ^ self.error_pattern(stream.size).reshape(stream.shape)

    @property
    def expected_ber(self) -> float:
        """Expected raw bit error rate of the model."""
        return self.bit_error_probability


@dataclass
class BurstErrorModel:
    """Two-state Gilbert-Elliott burst error model."""

    good_error_probability: float = 1e-6
    bad_error_probability: float = 0.2
    good_to_bad_probability: float = 1e-4
    bad_to_good_probability: float = 0.2
    rng: np.random.Generator | None = None

    def __post_init__(self) -> None:
        for name in (
            "good_error_probability",
            "bad_error_probability",
            "good_to_bad_probability",
            "bad_to_good_probability",
        ):
            value = getattr(self, name)
            if not 0.0 <= value <= 1.0:
                raise ConfigurationError(f"{name} must lie in [0, 1]")
        if self.rng is None:
            self.rng = np.random.default_rng()
        self._in_bad_state = False

    def error_pattern(self, num_bits: int) -> np.ndarray:
        """Generate a burst-correlated error pattern of a given length."""
        if num_bits < 0:
            raise ConfigurationError("number of bits cannot be negative")
        pattern = np.zeros(num_bits, dtype=np.uint8)
        uniform = self.rng.random(num_bits * 2).reshape(2, num_bits)
        for index in range(num_bits):
            if self._in_bad_state:
                if uniform[0, index] < self.bad_to_good_probability:
                    self._in_bad_state = False
            else:
                if uniform[0, index] < self.good_to_bad_probability:
                    self._in_bad_state = True
            probability = (
                self.bad_error_probability if self._in_bad_state else self.good_error_probability
            )
            if uniform[1, index] < probability:
                pattern[index] = 1
        return pattern

    def apply(self, bits) -> np.ndarray:
        """Return a copy of ``bits`` with a burst error pattern applied.

        Shape-preserving; a ``(B, n)`` matrix is corrupted in row-major
        (transmission) order so bursts span adjacent blocks like they would
        on the serialised wire.
        """
        stream = as_gf2(bits)
        return stream ^ self.error_pattern(stream.size).reshape(stream.shape)

    @property
    def expected_ber(self) -> float:
        """Long-run average bit error rate of the two-state chain."""
        p_bad = self.good_to_bad_probability / (
            self.good_to_bad_probability + self.bad_to_good_probability
        )
        return (
            p_bad * self.bad_error_probability
            + (1.0 - p_bad) * self.good_error_probability
        )
