"""Tests for the stochastic channels (BSC and OOK/AWGN)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.channel.awgn import OOKAWGNChannel
from repro.channel.ber import raw_ber_from_snr
from repro.channel.bsc import BinarySymmetricChannel
from repro.exceptions import ConfigurationError


class TestBinarySymmetricChannel:
    def test_zero_probability_is_transparent(self, rng):
        channel = BinarySymmetricChannel(0.0, rng=rng)
        bits = rng.integers(0, 2, size=1000, dtype=np.uint8)
        assert np.array_equal(channel.transmit(bits), bits)

    def test_probability_one_flips_everything(self, rng):
        channel = BinarySymmetricChannel(1.0, rng=rng)
        bits = rng.integers(0, 2, size=200, dtype=np.uint8)
        assert np.array_equal(channel.transmit(bits), bits ^ 1)

    def test_empirical_ber_tracks_crossover(self, rng):
        channel = BinarySymmetricChannel(0.1, rng=rng)
        bits = np.zeros(40000, dtype=np.uint8)
        channel.transmit(bits)
        assert channel.empirical_ber == pytest.approx(0.1, rel=0.1)

    def test_statistics_accumulate_and_reset(self, rng):
        channel = BinarySymmetricChannel(0.5, rng=rng)
        channel.transmit(np.zeros(100, dtype=np.uint8))
        assert channel.bits_transmitted == 100
        channel.reset_statistics()
        assert channel.bits_transmitted == 0
        assert channel.empirical_ber == 0.0

    def test_rejects_invalid_probability(self):
        with pytest.raises(ConfigurationError):
            BinarySymmetricChannel(-0.1)
        with pytest.raises(ConfigurationError):
            BinarySymmetricChannel(1.1)


class TestOOKAWGNChannel:
    def test_effective_snr_matches_equation_four(self):
        channel = OOKAWGNChannel(100e-6, crosstalk_power_w=4e-6, dark_current_a=4e-6)
        assert channel.effective_snr == pytest.approx((100e-6 - 4e-6) / 4e-6)

    def test_analytic_ber_is_equation_three_of_the_snr(self):
        channel = OOKAWGNChannel(60e-6)
        assert channel.analytic_ber == pytest.approx(
            raw_ber_from_snr(channel.effective_snr)
        )

    def test_noiseless_limit_transmits_correctly(self, rng):
        # A huge signal makes the error probability negligible.
        channel = OOKAWGNChannel(1.0, rng=rng)
        bits = rng.integers(0, 2, size=2000, dtype=np.uint8)
        assert np.array_equal(channel.transmit(bits), bits)

    def test_measured_ber_matches_analytic_prediction(self, rng):
        # Pick an SNR giving a conveniently measurable BER (~7e-3).
        signal = 12e-6
        channel = OOKAWGNChannel(signal, rng=rng)
        predicted = channel.analytic_ber
        bits = rng.integers(0, 2, size=200_000, dtype=np.uint8)
        received = channel.transmit(bits)
        measured = np.count_nonzero(received != bits) / bits.size
        assert measured == pytest.approx(predicted, rel=0.12)

    def test_crosstalk_degrades_the_snr(self):
        clean = OOKAWGNChannel(100e-6)
        dirty = OOKAWGNChannel(100e-6, crosstalk_power_w=20e-6)
        assert dirty.effective_snr < clean.effective_snr

    def test_soft_output_has_two_level_structure(self, rng):
        channel = OOKAWGNChannel(200e-6, rng=rng)
        ones = channel.transmit_soft(np.ones(500, dtype=np.uint8))
        zeros = channel.transmit_soft(np.zeros(500, dtype=np.uint8))
        assert ones.mean() > zeros.mean()

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            OOKAWGNChannel(0.0)
        with pytest.raises(ConfigurationError):
            OOKAWGNChannel(10e-6, crosstalk_power_w=-1e-6)
        with pytest.raises(ConfigurationError):
            OOKAWGNChannel(10e-6, crosstalk_power_w=20e-6)
        with pytest.raises(ConfigurationError):
            OOKAWGNChannel(10e-6, extinction_ratio_db=0.0)
        with pytest.raises(ConfigurationError):
            OOKAWGNChannel(10e-6, dark_current_a=0.0)
