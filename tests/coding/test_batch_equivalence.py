"""Batch/scalar equivalence of the vectorized coding engine.

For every code in the registry, the array-at-a-time ``encode_batch`` /
``decode_batch`` path must reproduce the pre-batching per-block reference
decoder bit-exactly — decoded messages, corrected codewords and the
detected/corrected/failure flags — on clean and corrupted blocks alike.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.coding.base import BatchDecodeResult, decode_blocks, encode_blocks
from repro.coding.galois import get_field
from repro.coding.registry import available_codes, get_code
from repro.exceptions import CodewordLengthError

# Deterministic per-code seeds (hash() is salted across interpreter runs).
def _seed(name: str) -> int:
    return sum(name.encode()) * 7919


def _reference_decode(code, block):
    reference = getattr(code, "_decode_block_reference", None)
    if reference is not None:
        return reference(block)
    return code.decode_block(block)


def _corrupted_batch(code, rng, num_blocks=96):
    """Messages, codewords and a received matrix mixing 0..3 errors per block."""
    messages = rng.integers(0, 2, size=(num_blocks, code.k), dtype=np.uint8)
    codewords = encode_blocks(code, messages)
    # Mean ~1.6 errors/block exercises the clean, corrected and failure paths.
    flips = (rng.random((num_blocks, code.n)) < 1.6 / code.n).astype(np.uint8)
    return messages, codewords, codewords ^ flips


@pytest.mark.parametrize("name", available_codes())
class TestBatchScalarEquivalence:
    def test_encode_batch_matches_encode_block(self, name):
        code = get_code(name)
        rng = np.random.default_rng(_seed(name))
        messages = rng.integers(0, 2, size=(64, code.k), dtype=np.uint8)
        batch = code.encode_batch(messages) if hasattr(code, "encode_batch") else None
        assert batch is not None, f"{name} lacks encode_batch"
        scalar = np.stack([code.encode_block(message) for message in messages])
        assert np.array_equal(batch, scalar)

    def test_decode_batch_matches_reference_on_corrupted_blocks(self, name):
        code = get_code(name)
        rng = np.random.default_rng(_seed(name) + 1)
        _, _, received = _corrupted_batch(code, rng)
        batch = code.decode_batch(received)
        for index, block in enumerate(received):
            reference = _reference_decode(code, block)
            assert np.array_equal(batch.message_bits[index], reference.message_bits), index
            assert np.array_equal(
                batch.corrected_codewords[index], reference.corrected_codeword
            ), index
            assert bool(batch.detected_error[index]) == reference.detected_error, index
            assert bool(batch.corrected[index]) == reference.corrected, index
            assert bool(batch.failure[index]) == reference.failure, index

    def test_decode_block_wrapper_matches_reference(self, name):
        code = get_code(name)
        rng = np.random.default_rng(_seed(name) + 2)
        _, _, received = _corrupted_batch(code, rng, num_blocks=32)
        for block in received:
            wrapped = code.decode_block(block)
            reference = _reference_decode(code, block)
            assert np.array_equal(wrapped.message_bits, reference.message_bits)
            assert wrapped.detected_error == reference.detected_error
            assert wrapped.corrected == reference.corrected
            assert wrapped.failure == reference.failure

    def test_clean_batch_decodes_to_the_messages(self, name):
        code = get_code(name)
        rng = np.random.default_rng(_seed(name) + 3)
        messages, codewords, _ = _corrupted_batch(code, rng, num_blocks=48)
        result = code.decode_batch(codewords)
        assert isinstance(result, BatchDecodeResult)
        assert np.array_equal(result.message_bits, messages)
        assert not result.detected_error.any()
        assert result.num_failures == 0


class TestBatchAPIValidation:
    def test_encode_batch_rejects_wrong_width(self):
        code = get_code("H(7,4)")
        with pytest.raises(CodewordLengthError):
            code.encode_batch(np.zeros((3, 5), dtype=np.uint8))

    def test_decode_batch_rejects_one_dimensional_input(self):
        code = get_code("H(7,4)")
        with pytest.raises(CodewordLengthError):
            code.decode_batch(np.zeros(7, dtype=np.uint8))

    def test_empty_batch_round_trips(self):
        code = get_code("H(71,64)")
        encoded = code.encode_batch(np.zeros((0, 64), dtype=np.uint8))
        assert encoded.shape == (0, 71)
        result = code.decode_batch(encoded)
        assert len(result) == 0
        assert result.message_bits.shape == (0, 64)

    def test_batch_result_indexing_recovers_scalar_results(self):
        code = get_code("H(7,4)")
        received = np.zeros((2, 7), dtype=np.uint8)
        received[1, 3] ^= 1
        result = code.decode_batch(received)
        assert len(result) == 2
        assert not result[0].detected_error
        assert result[1].corrected
        assert result.num_detected == 1

    def test_encode_decode_helpers_fall_back_for_duck_typed_codes(self):
        inner = get_code("H(7,4)")

        class MinimalCode:
            n = inner.n
            k = inner.k
            encode_block = staticmethod(inner.encode_block)
            decode_block = staticmethod(inner.decode_block)

        rng = np.random.default_rng(99)
        messages = rng.integers(0, 2, size=(16, inner.k), dtype=np.uint8)
        encoded = encode_blocks(MinimalCode(), messages)
        assert np.array_equal(encoded, inner.encode_batch(messages))
        decoded = decode_blocks(MinimalCode(), encoded)
        assert np.array_equal(decoded.message_bits, messages)


class TestScalarOverrideCompatibility:
    def test_decode_batch_honours_a_scalar_only_override(self):
        """Subclasses overriding only decode_block keep their semantics in batch."""
        from repro.coding.base import DecodeResult, LinearBlockCode
        from repro.coding.hamming import HammingCode

        class InvertingCode(HammingCode):
            """Toy override: decodes to the complement of the reference message."""

            def decode_block(self, received_bits, *, strict=False):
                reference = self._decode_block_reference(received_bits, strict=strict)
                return DecodeResult(
                    message_bits=reference.message_bits ^ 1,
                    corrected_codeword=reference.corrected_codeword,
                    detected_error=reference.detected_error,
                    corrected=reference.corrected,
                    failure=reference.failure,
                )

        code = InvertingCode(3)
        rng = np.random.default_rng(11)
        messages = rng.integers(0, 2, size=(16, code.k), dtype=np.uint8)
        codewords = code.encode_batch(messages)
        batched = code.decode_batch(codewords)
        assert np.array_equal(batched.message_bits, messages ^ 1)
        streamed = code.decode(codewords.reshape(-1))
        assert np.array_equal(streamed, (messages ^ 1).reshape(-1))
        helper = decode_blocks(code, codewords)
        assert np.array_equal(helper.message_bits, messages ^ 1)


class TestConstructionMemoization:
    def test_registry_lookups_share_instances(self):
        assert get_code("H(71,64)") is get_code("h(71, 64)")
        assert get_code("BCH(6,2)") is get_code("bch(6,2)")

    def test_galois_fields_are_memoized(self):
        assert get_field(6) is get_field(6)
        assert get_field(6) is not get_field(7)
