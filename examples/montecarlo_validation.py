"""Monte-Carlo validation of the analytic BER chain.

The paper's evaluation rests on three analytic relations: the OOK error
probability (Eq. 3), the post-decoding Hamming BER (Eq. 2) and the link SNR
(Eq. 4).  This example closes the loop empirically: it designs operating
points at moderate BER targets (so a Monte-Carlo run can observe errors in
reasonable time), simulates the physical link bit by bit, and compares the
measured raw and post-decoding error rates with the analytic predictions.

Run with::

    python examples/montecarlo_validation.py
"""

from __future__ import annotations

import numpy as np

from repro import OpticalLinkDesigner
from repro.coding import HammingCode, ShortenedHammingCode, UncodedScheme
from repro.coding.theory import output_ber
from repro.simulation import OpticalLinkSimulator


def main() -> None:
    """Validate the analytic chain at Monte-Carlo-friendly BER targets."""
    designer = OpticalLinkDesigner()
    rng = np.random.default_rng(2024)
    codes = [UncodedScheme(64), ShortenedHammingCode(64), HammingCode(3)]
    targets = (1e-3, 1e-4)

    header = (
        f"{'code':<12} {'target':>9} {'raw (Eq.3)':>12} {'raw (sim)':>12} "
        f"{'post (Eq.2)':>12} {'post (sim)':>12}"
    )
    print(header)
    print("-" * len(header))
    for target_ber in targets:
        for code in codes:
            point = designer.design_point(code, target_ber)
            simulator = OpticalLinkSimulator(code, point, rng=rng)
            # The batched engine makes 50k blocks per point cheap, enough to
            # see dozens of post-decoding errors even at the 1e-4 target.
            result = simulator.run(num_blocks=50_000)
            analytic_post = output_ber(code, point.raw_channel_ber)
            print(
                f"{code.name:<12} {target_ber:9.0e} {point.raw_channel_ber:12.3e} "
                f"{result.measured_raw_ber:12.3e} {analytic_post:12.3e} "
                f"{result.measured_post_decoding_ber:12.3e}"
            )
    print(
        "\nThe simulated raw BER tracks Eq. 3 and the simulated post-decoding BER tracks\n"
        "Eq. 2 (both within Monte-Carlo noise), which is the evidence that the laser\n"
        "powers computed for the paper's 1e-11/1e-12 targets deliver the promised\n"
        "communication quality."
    )


if __name__ == "__main__":
    main()
