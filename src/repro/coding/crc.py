"""Cyclic redundancy checks for error *detection*.

CRCs do not correct errors, so on their own they cannot relax the laser
power under the paper's fixed-BER criterion; they matter for the
detection-plus-retransmission policies explored by the runtime manager and
for end-to-end integrity checks in the message-level simulator.
"""

from __future__ import annotations

import numpy as np

from ..exceptions import CodewordLengthError, ConfigurationError
from .matrices import as_gf2

__all__ = ["CyclicRedundancyCheck"]

_WELL_KNOWN_POLYNOMIALS = {
    "crc4-itu": (4, 0x3),
    "crc8": (8, 0x07),
    "crc8-maxim": (8, 0x31),
    "crc16-ccitt": (16, 0x1021),
    "crc16-ibm": (16, 0x8005),
    "crc32": (32, 0x04C11DB7),
}


class CyclicRedundancyCheck:
    """Bit-serial CRC generator/checker over GF(2).

    Parameters
    ----------
    width:
        Number of CRC bits appended to the message.
    polynomial:
        Generator polynomial as an integer *without* the implicit leading
        ``x^width`` term (the usual "normal" representation, e.g. ``0x1021``
        for CRC-16-CCITT).
    """

    def __init__(self, width: int, polynomial: int):
        if width < 1 or width > 64:
            raise ConfigurationError("CRC width must lie between 1 and 64 bits")
        if polynomial <= 0 or polynomial >= (1 << width):
            raise ConfigurationError("polynomial must fit in `width` bits and be non-zero")
        self._width = width
        self._polynomial = polynomial

    @classmethod
    def from_name(cls, name: str) -> "CyclicRedundancyCheck":
        """Construct one of the well-known CRCs by name (e.g. ``"crc16-ccitt"``)."""
        key = name.lower()
        if key not in _WELL_KNOWN_POLYNOMIALS:
            raise ConfigurationError(
                f"unknown CRC {name!r}; known: {sorted(_WELL_KNOWN_POLYNOMIALS)}"
            )
        width, poly = _WELL_KNOWN_POLYNOMIALS[key]
        return cls(width, poly)

    @property
    def width(self) -> int:
        """Number of check bits."""
        return self._width

    @property
    def polynomial(self) -> int:
        """Generator polynomial (normal representation)."""
        return self._polynomial

    def checksum(self, bits) -> np.ndarray:
        """Compute the CRC remainder of a bit vector (MSB-first)."""
        stream = as_gf2(bits).ravel()
        register = 0
        mask = (1 << self._width) - 1
        top_bit = 1 << (self._width - 1)
        for bit in stream:
            feedback = ((register & top_bit) >> (self._width - 1)) ^ int(bit)
            register = ((register << 1) & mask)
            if feedback:
                register ^= self._polynomial
        return np.array(
            [(register >> (self._width - 1 - i)) & 1 for i in range(self._width)],
            dtype=np.uint8,
        )

    def append(self, bits) -> np.ndarray:
        """Return the message followed by its CRC bits."""
        stream = as_gf2(bits).ravel()
        return np.concatenate([stream, self.checksum(stream)])

    def verify(self, bits_with_crc) -> bool:
        """Check a message+CRC vector; True when no error is detected."""
        stream = as_gf2(bits_with_crc).ravel()
        if stream.size <= self._width:
            raise CodewordLengthError("received vector shorter than the CRC itself")
        message = stream[: -self._width]
        received_crc = stream[-self._width:]
        return bool(np.array_equal(self.checksum(message), received_crc))
