"""Benchmark ``headline``: the paper's summary claims (Section V-C).

Paper artefacts: the ~50% laser power reduction, the 92% laser share, the
251 mW -> 136 mW per-waveguide drop, the ~22 W interconnect saving, and the
"BER 1e-12 only reachable with ECC" feasibility cliff.
"""

from __future__ import annotations

import pytest

from repro.experiments.headline import run_headline


def test_bench_headline_claims(benchmark):
    """Time the headline recomputation and validate every claim's shape."""
    result = benchmark(run_headline)

    assert result.laser_share_uncoded == pytest.approx(0.92, abs=0.02)
    assert result.power_reduction["H(71,64)"] == pytest.approx(0.45, abs=0.10)
    assert result.power_reduction["H(7,4)"] == pytest.approx(0.49, abs=0.10)
    assert result.per_waveguide_power_mw["w/o ECC"] == pytest.approx(251.0, rel=0.10)
    assert result.per_waveguide_power_mw["H(71,64)"] == pytest.approx(136.0, rel=0.10)
    assert result.total_saving_w == pytest.approx(22.0, rel=0.25)
    assert result.ber_1e12_feasible == {"w/o ECC": False, "H(71,64)": True, "H(7,4)": True}


def test_bench_interconnect_aggregation(benchmark):
    """Micro-benchmark of the whole-network power aggregation."""
    from repro.coding.hamming import ShortenedHammingCode
    from repro.interconnect.network import OpticalNetwork

    network = OpticalNetwork()
    total = benchmark(network.total_power_w, ShortenedHammingCode(64), 1e-11)
    assert 15.0 < total < 35.0
