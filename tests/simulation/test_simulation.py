"""Tests for fault injection, the link simulator, packets, stats and transfers."""

from __future__ import annotations

import numpy as np
import pytest

from repro.coding.hamming import HammingCode
from repro.coding.uncoded import UncodedScheme
from repro.exceptions import ConfigurationError
from repro.interconnect.mwsr import MWSRChannel
from repro.link.design import OpticalLinkDesigner
from repro.simulation.faults import BurstErrorModel, IndependentErrorModel
from repro.simulation.linksim import OpticalLinkSimulator
from repro.simulation.packets import Message, Packet
from repro.simulation.stats import StreamingStatistics
from repro.simulation.transfersim import MessageTransferSimulator


class TestIndependentErrorModel:
    def test_zero_probability_is_transparent(self, rng):
        model = IndependentErrorModel(0.0, rng=rng)
        bits = rng.integers(0, 2, size=500, dtype=np.uint8)
        assert np.array_equal(model.apply(bits), bits)

    def test_error_rate_matches_probability(self, rng):
        model = IndependentErrorModel(0.05, rng=rng)
        pattern = model.error_pattern(100_000)
        assert pattern.mean() == pytest.approx(0.05, rel=0.1)

    def test_expected_ber(self):
        assert IndependentErrorModel(0.01).expected_ber == pytest.approx(0.01)

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            IndependentErrorModel(1.5)
        with pytest.raises(ConfigurationError):
            IndependentErrorModel(0.1).error_pattern(-1)


class TestBurstErrorModel:
    def test_long_run_average_matches_expected_ber(self, rng):
        model = BurstErrorModel(
            good_error_probability=1e-4,
            bad_error_probability=0.3,
            good_to_bad_probability=0.01,
            bad_to_good_probability=0.2,
            rng=rng,
        )
        pattern = model.error_pattern(200_000)
        assert pattern.mean() == pytest.approx(model.expected_ber, rel=0.2)

    def test_errors_are_clustered(self, rng):
        model = BurstErrorModel(
            good_error_probability=0.0,
            bad_error_probability=0.5,
            good_to_bad_probability=0.002,
            bad_to_good_probability=0.1,
            rng=rng,
        )
        pattern = model.error_pattern(50_000)
        error_positions = np.nonzero(pattern)[0]
        assert error_positions.size > 10
        gaps = np.diff(error_positions)
        # Clustered errors: many consecutive errors are only a few bits apart.
        assert np.median(gaps) < 20

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            BurstErrorModel(bad_error_probability=1.5)


class TestOpticalLinkSimulator:
    def test_measured_raw_ber_tracks_analytic(self, rng):
        designer = OpticalLinkDesigner()
        code = HammingCode(3)
        point = designer.design_point(code, 1e-3)
        simulator = OpticalLinkSimulator(code, point, rng=rng)
        result = simulator.run(num_blocks=6000)
        assert result.measured_raw_ber == pytest.approx(point.raw_channel_ber, rel=0.2)

    def test_coding_improves_the_post_decoding_ber(self, rng):
        designer = OpticalLinkDesigner()
        code = HammingCode(3)
        point = designer.design_point(code, 1e-3)
        simulator = OpticalLinkSimulator(code, point, rng=rng)
        result = simulator.run(num_blocks=6000)
        assert result.measured_post_decoding_ber < result.measured_raw_ber

    def test_uncoded_link_at_target_has_matching_raw_and_post_ber(self, rng):
        designer = OpticalLinkDesigner()
        code = UncodedScheme(64)
        point = designer.design_point(code, 1e-2)
        simulator = OpticalLinkSimulator(code, point, rng=rng)
        result = simulator.run(num_blocks=1500)
        assert result.measured_post_decoding_ber == pytest.approx(result.measured_raw_ber)
        assert result.measured_raw_ber == pytest.approx(1e-2, rel=0.3)

    def test_result_bookkeeping(self, rng):
        designer = OpticalLinkDesigner()
        code = HammingCode(3)
        point = designer.design_point(code, 1e-4)
        result = OpticalLinkSimulator(code, point, rng=rng).run(num_blocks=100)
        assert result.blocks_simulated == 100
        assert result.bits_simulated == 400
        assert 0.0 <= result.block_error_rate <= 1.0

    def test_validation(self, rng):
        designer = OpticalLinkDesigner()
        code = HammingCode(3)
        point = designer.design_point(code, 1e-4)
        simulator = OpticalLinkSimulator(code, point, rng=rng)
        with pytest.raises(ConfigurationError):
            simulator.run(num_blocks=0)


class TestPacketsAndMessages:
    def test_packet_validation(self):
        with pytest.raises(ConfigurationError):
            Packet(source=1, destination=1, payload_bits=np.ones(8, dtype=np.uint8))
        with pytest.raises(ConfigurationError):
            Packet(source=1, destination=2, payload_bits=np.zeros(0, dtype=np.uint8))

    def test_message_from_bits_pads_to_packet_size(self, rng):
        bits = rng.integers(0, 2, size=100, dtype=np.uint8)
        message = Message.from_bits(1, 0, bits, packet_size_bits=64)
        assert len(message.packets) == 2
        assert message.size_bits == 128
        assert np.array_equal(message.payload()[:100], bits)

    def test_payload_respects_sequence_numbers(self, rng):
        bits = rng.integers(0, 2, size=128, dtype=np.uint8)
        message = Message.from_bits(1, 0, bits, packet_size_bits=64)
        message.packets.reverse()
        assert np.array_equal(message.payload(), bits)

    def test_mismatched_packet_endpoints_rejected(self):
        message = Message(source=1, destination=0)
        with pytest.raises(ConfigurationError):
            message.append(Packet(source=2, destination=0, payload_bits=np.ones(8, dtype=np.uint8)))


class TestStreamingStatistics:
    def test_mean_and_variance_match_numpy(self, rng):
        samples = rng.normal(3.0, 2.0, size=500)
        stats = StreamingStatistics()
        stats.extend(samples)
        assert stats.mean == pytest.approx(samples.mean())
        assert stats.variance == pytest.approx(samples.var(ddof=1), rel=1e-9)
        assert stats.minimum == pytest.approx(samples.min())
        assert stats.maximum == pytest.approx(samples.max())

    def test_confidence_interval_contains_the_mean(self, rng):
        stats = StreamingStatistics()
        stats.extend(rng.normal(0.0, 1.0, size=200))
        low, high = stats.confidence_interval()
        assert low <= stats.mean <= high

    def test_empty_statistics_are_safe(self):
        stats = StreamingStatistics()
        assert stats.variance == 0.0
        assert stats.standard_error == 0.0
        assert stats.as_dict()["count"] == 0.0


class TestMessageTransferSimulator:
    @pytest.fixture
    def simulator(self, rng):
        channel = MWSRChannel(reader=0)
        return MessageTransferSimulator(
            channel=channel,
            code=HammingCode(3),
            raw_ber=1e-3,
            channel_power_w=0.13,
            rng=rng,
        )

    def test_transfer_latency_includes_coding_overhead(self, simulator, rng):
        message = Message.from_bits(3, 0, rng.integers(0, 2, size=4096, dtype=np.uint8))
        record = simulator.transfer(message)
        # 4096 bits * 7/4 coded, over 16 lambda at 10 Gb/s.
        expected = 4096 * 1.75 / (16 * 10e9)
        assert record.serialization_time_s == pytest.approx(expected)
        assert record.coded_bits == 4096 * 7 // 4

    def test_contending_transfers_queue_up(self, simulator, rng):
        first = Message.from_bits(3, 0, rng.integers(0, 2, size=8192, dtype=np.uint8))
        second = Message.from_bits(5, 0, rng.integers(0, 2, size=8192, dtype=np.uint8))
        records = simulator.run([(first, 0.0), (second, 0.0)])
        assert records[1].start_time_s >= records[0].completion_time_s

    def test_energy_scales_with_duration(self, simulator, rng):
        small = Message.from_bits(3, 0, rng.integers(0, 2, size=1024, dtype=np.uint8))
        large = Message.from_bits(3, 0, rng.integers(0, 2, size=8192, dtype=np.uint8))
        small_record = simulator.transfer(small)
        large_record = simulator.transfer(large)
        assert large_record.channel_energy_j > small_record.channel_energy_j

    def test_low_raw_ber_transfers_are_mostly_error_free(self, rng):
        channel = MWSRChannel(reader=0)
        simulator = MessageTransferSimulator(
            channel=channel, code=HammingCode(3), raw_ber=1e-6, rng=rng
        )
        message = Message.from_bits(2, 0, rng.integers(0, 2, size=4096, dtype=np.uint8))
        record = simulator.transfer(message)
        assert record.error_free

    def test_empty_message_transfers_without_errors(self, simulator):
        # Regression: zero payload blocks used to crash the batched decode
        # path with np.concatenate([]).
        record = simulator.transfer(Message(source=3, destination=0))
        assert record.payload_bits == 0
        assert record.coded_bits == 0
        assert record.error_free

    def test_seed_reproduces_the_transfer_outcome(self):
        def record(seed):
            simulator = MessageTransferSimulator(
                channel=MWSRChannel(reader=0), code=HammingCode(3), raw_ber=2e-2, seed=seed
            )
            bits = np.random.default_rng(0).integers(0, 2, size=4096, dtype=np.uint8)
            return simulator.transfer(Message.from_bits(3, 0, bits))

        # Same seed, same corruption; a SeedSequence works as a seed too.
        assert record(99).residual_bit_errors == record(99).residual_bit_errors
        sequence_runs = [record(np.random.SeedSequence(1234)) for _ in range(2)]
        assert sequence_runs[0].residual_bit_errors == sequence_runs[1].residual_bit_errors

    def test_seed_and_rng_are_mutually_exclusive(self, rng):
        with pytest.raises(ConfigurationError):
            MessageTransferSimulator(
                channel=MWSRChannel(reader=0), code=HammingCode(3), raw_ber=1e-3,
                rng=rng, seed=1,
            )

    def test_wrong_destination_rejected(self, simulator, rng):
        message = Message.from_bits(3, 4, rng.integers(0, 2, size=64, dtype=np.uint8))
        with pytest.raises(ConfigurationError):
            simulator.transfer(message)

    def test_statistics_accumulate(self, simulator, rng):
        for _ in range(3):
            message = Message.from_bits(3, 0, rng.integers(0, 2, size=512, dtype=np.uint8))
            simulator.transfer(message)
        assert simulator.latency_stats.count == 3
        assert simulator.occupancy_stats.total > 0
