"""Tests for the WDM grid, MMI coupler and crosstalk models."""

from __future__ import annotations

import numpy as np
import pytest

from repro.config import DEFAULT_CONFIG
from repro.exceptions import ConfigurationError
from repro.photonics.coupler import MMICoupler
from repro.photonics.crosstalk import CrosstalkModel
from repro.photonics.microring import MicroringResonator
from repro.photonics.wdm import WDMGrid


class TestWDMGrid:
    def test_from_config(self):
        grid = WDMGrid.from_config(DEFAULT_CONFIG)
        assert grid.num_channels == 16
        assert grid.channel_spacing_m == pytest.approx(0.8e-9)

    def test_grid_is_centred(self):
        grid = WDMGrid(num_channels=5, center_wavelength_m=1550e-9, channel_spacing_m=1e-9)
        wavelengths = grid.wavelengths_m
        assert wavelengths[2] == pytest.approx(1550e-9)
        assert len(wavelengths) == 5

    def test_uniform_spacing(self):
        grid = WDMGrid(num_channels=8)
        diffs = np.diff(grid.as_array())
        assert np.allclose(diffs, grid.channel_spacing_m)

    def test_detuning_sign_convention(self):
        grid = WDMGrid(num_channels=4)
        assert grid.detuning_m(3, 0) > 0
        assert grid.detuning_m(0, 3) < 0
        assert grid.detuning_m(2, 2) == 0.0

    def test_neighbours(self):
        grid = WDMGrid(num_channels=4)
        assert grid.neighbours(0) == (1,)
        assert grid.neighbours(3) == (2,)
        assert grid.neighbours(2) == (1, 3)

    def test_channel_spacing_in_frequency_is_about_100ghz(self):
        grid = WDMGrid(center_wavelength_m=1550e-9, channel_spacing_m=0.8e-9)
        assert grid.channel_spacing_hz == pytest.approx(100e9, rel=0.05)

    def test_index_validation(self):
        grid = WDMGrid(num_channels=4)
        with pytest.raises(ConfigurationError):
            grid.wavelength(4)
        with pytest.raises(ConfigurationError):
            grid.wavelength(-1)

    def test_constructor_validation(self):
        with pytest.raises(ConfigurationError):
            WDMGrid(num_channels=0)
        with pytest.raises(ConfigurationError):
            WDMGrid(channel_spacing_m=0.0)


class TestMMICoupler:
    def test_from_config(self):
        coupler = MMICoupler.from_config(DEFAULT_CONFIG)
        assert coupler.num_ports == 16
        assert coupler.insertion_loss_db == pytest.approx(1.2)

    def test_nominal_transmission(self):
        coupler = MMICoupler(insertion_loss_db=1.2)
        assert coupler.transmission == pytest.approx(10 ** (-0.12))

    def test_imbalance_spreads_across_ports(self):
        coupler = MMICoupler(insertion_loss_db=1.0, imbalance_db=0.5, num_ports=4)
        transmissions = coupler.all_port_transmissions()
        assert transmissions[0] == pytest.approx(10 ** (-0.1))
        assert transmissions[-1] == pytest.approx(10 ** (-0.15))
        assert np.all(np.diff(transmissions) < 0)

    def test_single_port_coupler_has_no_imbalance(self):
        coupler = MMICoupler(insertion_loss_db=1.0, imbalance_db=1.0, num_ports=1)
        assert coupler.port_transmission(0) == pytest.approx(10 ** (-0.1))

    def test_port_validation(self):
        coupler = MMICoupler(num_ports=4)
        with pytest.raises(ConfigurationError):
            coupler.port_transmission(4)

    def test_constructor_validation(self):
        with pytest.raises(ConfigurationError):
            MMICoupler(insertion_loss_db=-1.0)
        with pytest.raises(ConfigurationError):
            MMICoupler(num_ports=0)


class TestCrosstalkModel:
    def test_from_config_worst_case_is_a_few_percent(self):
        model = CrosstalkModel.from_config(DEFAULT_CONFIG)
        ratio = model.worst_case_ratio()
        assert 0.005 < ratio < 0.10

    def test_central_channels_suffer_the_most(self):
        model = CrosstalkModel.from_config(DEFAULT_CONFIG)
        ratios = model.ratios()
        assert ratios[len(ratios) // 2] > ratios[0]
        assert ratios[len(ratios) // 2] > ratios[-1]

    def test_single_channel_has_no_crosstalk(self):
        grid = WDMGrid(num_channels=1)
        model = CrosstalkModel(grid=grid, drop_ring=MicroringResonator())
        assert model.crosstalk_ratio(0) == 0.0

    def test_wider_spacing_reduces_crosstalk(self):
        ring = MicroringResonator()
        narrow = CrosstalkModel(grid=WDMGrid(num_channels=8, channel_spacing_m=0.4e-9), drop_ring=ring)
        wide = CrosstalkModel(grid=WDMGrid(num_channels=8, channel_spacing_m=1.6e-9), drop_ring=ring)
        assert wide.worst_case_ratio() < narrow.worst_case_ratio()

    def test_higher_q_reduces_crosstalk(self):
        grid = WDMGrid(num_channels=8)
        low_q = CrosstalkModel(grid=grid, drop_ring=MicroringResonator(quality_factor=4000))
        high_q = CrosstalkModel(grid=grid, drop_ring=MicroringResonator(quality_factor=20000))
        assert high_q.worst_case_ratio() < low_q.worst_case_ratio()

    def test_crosstalk_power_scales_with_received_power(self):
        model = CrosstalkModel.from_config(DEFAULT_CONFIG)
        low = model.crosstalk_power_w(0, 10e-6)
        high = model.crosstalk_power_w(0, 20e-6)
        assert high == pytest.approx(2 * low)

    def test_negative_power_rejected(self):
        model = CrosstalkModel.from_config(DEFAULT_CONFIG)
        with pytest.raises(ConfigurationError):
            model.crosstalk_power_w(0, -1e-6)
