"""Tests of the ``adaptive`` experiment: grid, determinism, headline claim."""

from __future__ import annotations

import pytest

from repro.exceptions import ConfigurationError
from repro.experiments import adaptive
from repro.experiments.orchestrator import available_experiments, run_experiment

#: Small but meaningful grid reused by every test in the module.
_OPTIONS = {
    "drifts": ["aging"],
    "loads": [0.4],
    "num_requests": 400,
    "seed": 77,
}


@pytest.fixture(scope="module")
def serial_report():
    return run_experiment("adaptive", options=_OPTIONS)


def test_registered_with_the_orchestrator():
    assert "adaptive" in available_experiments()


def test_grid_shards_one_per_point():
    shards = adaptive.sweep_shards(options={"drifts": ["thermal", "none"], "loads": [0.2, 0.5]})
    assert len(shards) == 2 * 2 * 3
    # Policies of one (drift, load) pair share the pair's seed streams.
    pair_indices = {
        (shard["drift"], shard["load"]): shard["pair_index"] for shard in shards
    }
    assert len(set(pair_indices.values())) == 4
    for shard in shards:
        assert shard["pair_index"] == pair_indices[(shard["drift"], shard["load"])]


def test_grid_rejects_unknown_axes():
    with pytest.raises(ConfigurationError):
        adaptive.sweep_shards(options={"drifts": ["volcanic"]})
    with pytest.raises(ConfigurationError):
        adaptive.sweep_shards(options={"policies": ["telepathic"]})


def test_parallel_report_is_byte_identical(serial_report):
    """Determinism guard: serial vs --jobs 4 must match byte for byte."""
    text, rows = serial_report
    text4, rows4 = run_experiment("adaptive", jobs=4, options=_OPTIONS)
    assert text == text4
    assert rows == rows4


def test_adaptive_saves_energy_at_same_ber_target(serial_report):
    """The acceptance criterion: strictly lower energy, target still met."""
    _, rows = serial_report
    by_policy = {row["policy"]: row for row in rows}
    static = by_policy["static-worst"]
    adaptive_row = by_policy["adaptive"]
    oracle_row = by_policy["oracle"]
    assert adaptive_row["total_energy_j"] < static["total_energy_j"]
    assert oracle_row["total_energy_j"] < static["total_energy_j"]
    assert adaptive_row["energy_saved_vs_static_pct"] > 0.0
    # Same BER target: the delivered-bit error rate stays at or below it.
    for row in rows:
        assert row["delivered_bit_error_rate"] <= 1e-9
    # The adaptive policy actually adapted (and paid for it).
    assert adaptive_row["configuration_switches"] > 0
    assert adaptive_row["reconfiguration_energy_j"] > 0.0
    assert static["configuration_switches"] == 0


def test_payload_carries_interval_trace():
    shards = adaptive.sweep_shards(options=_OPTIONS)
    payload = adaptive.run_sweep_shard(shards[1])  # the adaptive point
    assert payload["policy"] == "adaptive"
    trace = payload["trace"]
    assert len(trace) >= adaptive.TRACE_INTERVALS // 2
    assert {"interval", "start_s", "energy_j", "switches"} <= set(trace[0])
    assert sum(row["switches"] for row in trace) == payload["configuration_switches"]


def test_csv_rows_are_scalar_only(serial_report):
    _, rows = serial_report
    for row in rows:
        assert "trace" not in row
        assert all(not isinstance(value, (list, dict)) for value in row.values())


def test_zero_drift_profile_equalises_all_policies():
    """With drift "none" the three policies are the same static design."""
    options = {"drifts": ["none"], "loads": [0.4], "num_requests": 200, "seed": 3}
    _, rows = run_experiment("adaptive", options=options)
    energies = {row["policy"]: row["total_energy_j"] for row in rows}
    assert energies["static-worst"] == energies["adaptive"] == energies["oracle"]
    assert all(row["configuration_switches"] == 0 for row in rows)


def test_resume_from_checkpoint(tmp_path, serial_report):
    text, rows = serial_report
    directory = str(tmp_path)
    partial, _ = run_experiment("adaptive", options=_OPTIONS, checkpoint_dir=directory)
    resumed_text, resumed_rows = run_experiment(
        "adaptive", options=_OPTIONS, checkpoint_dir=directory, resume=True
    )
    assert partial == text
    assert resumed_text == text
    assert resumed_rows == rows
