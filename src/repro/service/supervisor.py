"""Supervised job execution: forked workers, timeouts, backoff, poison jobs.

The supervisor is a background thread that claims jobs off the
:class:`~repro.service.queue.DurableJobQueue` and runs each one through
:func:`repro.experiments.orchestrator.run_experiment` **in a forked child
process**.  The process boundary is the robustness boundary: a job that
SIGKILLs its worker, segfaults, leaks memory until the OOM killer fires or
simply hangs cannot take the service down — the supervisor observes the
child's death, charges an attempt and retries.

Recovery semantics per failure mode:

* **worker death / crash** (nonzero or signal exit): the attempt is
  charged, the job re-queued with exponential backoff plus deterministic
  jitter; the child checkpointed after every completed shard, so the
  retry resumes (``resume=True``) and recomputes only what was lost —
  a recovered job's result is byte-identical to an uninterrupted run
  because shard seeds are position-keyed.
* **hang**: bounded by ``job_timeout_s``; the child gets SIGTERM (a grace
  window in which the orchestrator's cancellation hook finalizes the
  checkpoint), then SIGKILL.  Charged and retried like a crash.
* **deterministic failure** (an exception inside the sweep: bad grid,
  in-shard bug): retrying cannot help forever.  The circuit breaker marks
  the job ``dead`` (poison) after ``max_deterministic_failures``
  occurrences instead of burning the full transient-retry budget.
* **store damage**: a worker that exits cleanly but whose result does not
  verify in the store (truncated mid-write, disk corruption) counts as a
  failed attempt — the store has already quarantined the artefact.
* **drain** (service shutdown): the running child gets SIGTERM, finishes
  its current shard, writes the final checkpoint and exits with the
  *cancelled* code; the job returns to ``queued`` without being charged,
  so the next service start resumes it.

Every finished job leaves a lifecycle manifest
(``job-<id>.manifest.json``; see :func:`repro.obs.manifest.build_job_manifest`)
recording each attempt and its outcome.
"""

from __future__ import annotations

import logging
import multiprocessing
import os
import random
import signal
import threading
import time
from typing import Dict, List, Optional

from ..config import DEFAULT_CONFIG, PaperConfig
from ..exceptions import ConfigurationError, SweepCancelled
from ..obs import manifest as obs_manifest
from .models import Job, JobState
from .queue import DurableJobQueue
from .store import ResultsStore

__all__ = ["Supervisor", "EXIT_TRANSIENT", "EXIT_DETERMINISTIC", "EXIT_CANCELLED"]

logger = logging.getLogger("repro.service.supervisor")

#: Worker exit codes the supervisor dispatches on.
EXIT_TRANSIENT = 2
EXIT_DETERMINISTIC = 3
EXIT_CANCELLED = 4

#: Set by the worker's SIGTERM/SIGINT handler; polled by the orchestrator's
#: cancellation hook between shards.
_WORKER_CANCELLED = [False]


def _worker_signal_handler(signum, frame) -> None:
    _WORKER_CANCELLED[0] = True


def _job_worker(
    experiment: str,
    options: dict | None,
    jobs: int,
    config: PaperConfig,
    checkpoint_dir: str,
    store_root: str,
    fingerprint: str,
) -> None:
    """Forked child entry point: run the sweep, verify-write the result.

    Exit codes: ``0`` success (result persisted), :data:`EXIT_CANCELLED`
    clean cancellation after a SIGTERM (checkpoint finalized),
    :data:`EXIT_DETERMINISTIC` an in-sweep exception retries cannot fix,
    :data:`EXIT_TRANSIENT` an environmental error worth retrying.
    """
    # Imported lazily so the fork shares the parent's already-imported
    # modules; run_experiment dispatches through the registry the parent
    # populated (fork start method), including test-registered grids.
    from ..experiments.orchestrator import run_experiment

    _WORKER_CANCELLED[0] = False
    signal.signal(signal.SIGTERM, _worker_signal_handler)
    signal.signal(signal.SIGINT, _worker_signal_handler)
    try:
        text, rows = run_experiment(
            experiment,
            config=config,
            jobs=jobs,
            options=options,
            checkpoint_dir=checkpoint_dir,
            resume=True,
            manifest_dir=checkpoint_dir,
            cancel=lambda: _WORKER_CANCELLED[0],
        )
        ResultsStore(store_root).put(fingerprint, {"text": text, "rows": rows})
    except SweepCancelled:
        os._exit(EXIT_CANCELLED)
    except (MemoryError, OSError) as error:
        logger.error("job worker transient failure: %s", error)
        os._exit(EXIT_TRANSIENT)
    except BaseException as error:  # noqa: BLE001 - classified via exit code
        # Anything the sweep itself raised is deterministic: the same grid
        # will raise it again (the orchestrator already absorbed transient
        # worker faults internally before letting an exception surface).
        logger.error("job worker deterministic failure: %s: %s", type(error).__name__, error)
        os._exit(EXIT_DETERMINISTIC)
    os._exit(0)


class Supervisor(threading.Thread):
    """Claims queued jobs and runs them in supervised forked workers."""

    def __init__(
        self,
        queue: DurableJobQueue,
        store: ResultsStore,
        *,
        work_dir: str,
        config: PaperConfig = DEFAULT_CONFIG,
        job_timeout_s: float = 600.0,
        max_attempts: int = 3,
        max_deterministic_failures: int = 2,
        backoff_base_s: float = 0.5,
        backoff_cap_s: float = 30.0,
        term_grace_s: float = 5.0,
        registry=None,
    ):
        if "fork" not in multiprocessing.get_all_start_methods():
            raise ConfigurationError(
                "the service supervisor requires the fork start method"
            )
        if job_timeout_s <= 0.0:
            raise ConfigurationError("job timeout must be positive")
        if max_attempts < 1:
            raise ConfigurationError("max_attempts must be at least 1")
        if max_deterministic_failures < 1:
            raise ConfigurationError("max_deterministic_failures must be at least 1")
        super().__init__(name="repro-service-supervisor", daemon=True)
        self.queue = queue
        self.store = store
        self.work_dir = work_dir
        self.config = config
        self.job_timeout_s = float(job_timeout_s)
        self.max_attempts = int(max_attempts)
        self.max_deterministic_failures = int(max_deterministic_failures)
        self.backoff_base_s = float(backoff_base_s)
        self.backoff_cap_s = float(backoff_cap_s)
        self.term_grace_s = float(term_grace_s)
        self.registry = registry
        self._context = multiprocessing.get_context("fork")
        self._stop_event = threading.Event()
        #: Guards ``_active`` and ``_cancel_requested`` — both are touched
        #: by API threads (cancel/stop) while the supervisor loop runs.
        self._active_lock = threading.Lock()
        self._active: "tuple[str, multiprocessing.process.BaseProcess] | None" = None
        self._cancel_requested: set[str] = set()
        #: attempt audit trail per job id, folded into the job manifest.
        self._attempt_log: Dict[str, List[dict]] = {}
        os.makedirs(work_dir, exist_ok=True)

    # ------------------------------------------------------------------- control
    def stop(self, *, drain_timeout_s: float = 30.0) -> None:
        """Drain and stop: SIGTERM the running worker, re-queue its job.

        The worker's cancellation hook finalizes the checkpoint before it
        exits, so the re-queued job resumes from exactly the shards that
        landed.  Blocks until the supervisor thread exits (bounded by
        ``drain_timeout_s`` plus the TERM/KILL grace).
        """
        self._stop_event.set()
        self.queue.work_available.set()  # wake the idle wait immediately
        with self._active_lock:
            active = self._active
        if active is not None:
            _job_id, process = active
            self._terminate(process)
        self.join(timeout=drain_timeout_s + self.term_grace_s + self.job_timeout_s)

    def cancel_job(self, job_id: str) -> Job:
        """Cancel one job: queued jobs die immediately, running ones drain."""
        job = self.queue.get(job_id)
        if job.state == JobState.QUEUED:
            return self.queue.transition(job_id, JobState.DEAD, error="cancelled by request")
        if job.state == JobState.RUNNING:
            with self._active_lock:
                self._cancel_requested.add(job_id)
                active = self._active
            if active is not None and active[0] == job_id:
                self._terminate(active[1])
            return self.queue.get(job_id)
        return job

    def active_worker_pid(self) -> Optional[int]:
        """PID of the currently forked job worker (chaos-test hook)."""
        with self._active_lock:
            if self._active is None:
                return None
            return self._active[1].pid

    def job_dir(self, job_id: str) -> str:
        """Per-job working directory (checkpoints, sweep + job manifests)."""
        return os.path.join(self.work_dir, job_id)

    # --------------------------------------------------------------------- loop
    def run(self) -> None:  # pragma: no cover - exercised via service tests
        while not self._stop_event.is_set():
            job = self.queue.claim_next()
            if job is None:
                retry_in = self.queue.next_retry_delay_s()
                timeout = 0.05 if retry_in is None else min(0.05, max(retry_in, 0.005))
                self.queue.work_available.wait(timeout=timeout)
                continue
            try:
                self._run_job(job)
            except Exception:  # noqa: BLE001 - the supervisor must survive
                logger.exception("supervisor failed while running job %s", job.job_id)
                try:
                    self.queue.transition(
                        job.job_id,
                        JobState.DEAD,
                        error="supervisor error; see service log",
                    )
                except Exception:  # noqa: BLE001
                    logger.exception(
                        "could not mark job %s dead after a supervisor error",
                        job.job_id,
                    )

    # ----------------------------------------------------------------- attempts
    def _terminate(self, process) -> None:
        """SIGTERM, grace, then SIGKILL; never raises on an already-dead child."""
        try:
            process.terminate()
        except (OSError, ValueError):
            return
        process.join(timeout=self.term_grace_s)
        if process.is_alive():
            try:
                process.kill()
            except (OSError, ValueError):
                pass
            process.join(timeout=self.term_grace_s)

    def _backoff_delay_s(self, job: Job) -> float:
        """Exponential backoff with deterministic per-(job, attempt) jitter."""
        exponent = max(0, job.attempts + job.deterministic_failures - 1)
        delay = min(self.backoff_cap_s, self.backoff_base_s * (2.0**exponent))
        jitter = random.Random(f"{job.job_id}:{exponent}").random()
        return delay * (1.0 + 0.25 * jitter)

    def _inc(self, name: str, amount: int = 1) -> None:
        if self.registry is not None:
            self.registry.inc(name, amount)

    def _record_attempt(self, job_id: str, outcome: str, detail: dict) -> None:
        self._attempt_log.setdefault(job_id, []).append(
            {"outcome": outcome, "at_s": time.time(), **detail}
        )

    def _run_job(self, job: Job) -> None:
        checkpoint_dir = self.job_dir(job.job_id)
        os.makedirs(checkpoint_dir, exist_ok=True)
        started = time.perf_counter()
        process = self._context.Process(
            target=_job_worker,
            args=(
                job.experiment,
                job.options,
                job.jobs,
                self.config,
                checkpoint_dir,
                self.store.root,
                job.job_id,
            ),
            name=f"repro-job-{job.job_id[:12]}",
        )
        process.start()
        with self._active_lock:
            self._active = (job.job_id, process)
        if self._stop_event.is_set():
            # stop() may have missed the child in the claim->fork window.
            self._terminate(process)
        try:
            process.join(timeout=self.job_timeout_s)
            timed_out = process.is_alive()
            if timed_out:
                logger.warning(
                    "job %s exceeded its %gs timeout; terminating worker %s",
                    job.job_id,
                    self.job_timeout_s,
                    process.pid,
                )
                self._terminate(process)
            exitcode = process.exitcode
        finally:
            with self._active_lock:
                self._active = None
        elapsed = time.perf_counter() - started
        detail = {"exitcode": exitcode, "elapsed_s": round(elapsed, 6), "pid": process.pid}

        if self._stop_event.is_set() and exitcode != 0:
            # Drain: the worker finalized its checkpoint (clean cancel) or
            # was killed after the grace window; either way the job goes
            # back uncharged so the next service start resumes it.
            self._record_attempt(job.job_id, "drained", detail)
            self.queue.transition(job.job_id, JobState.QUEUED, error="interrupted by shutdown")
            return
        with self._active_lock:
            cancel_requested = job.job_id in self._cancel_requested
            self._cancel_requested.discard(job.job_id)
        if cancel_requested:
            self._record_attempt(job.job_id, "cancelled", detail)
            self._finalize(
                self.queue.transition(job.job_id, JobState.DEAD, error="cancelled by request")
            )
            self._inc("service.jobs.cancelled")
            return

        if timed_out:
            self._record_attempt(job.job_id, "timeout", detail)
            self._charge_failure(job, f"worker exceeded the {self.job_timeout_s:g}s job timeout")
            self._inc("service.jobs.timeouts")
            return
        if exitcode == 0:
            if self.store.get(job.job_id) is not None:
                self._record_attempt(job.job_id, "done", detail)
                self._finalize(self.queue.transition(job.job_id, JobState.DONE))
                self._inc("service.jobs.completed")
                logger.info("job %s (%s) done in %.2fs", job.job_id, job.experiment, elapsed)
            else:
                # The worker believed it succeeded but the artefact does not
                # verify (torn write, disk damage); the store has already
                # quarantined whatever was there.
                self._record_attempt(job.job_id, "store-verification-failed", detail)
                self._charge_failure(job, "result failed store verification")
            return
        if exitcode == EXIT_CANCELLED:
            # SIGTERM from outside the service (operator); not a failure.
            self._record_attempt(job.job_id, "interrupted", detail)
            self.queue.transition(job.job_id, JobState.QUEUED, error="worker interrupted")
            return
        if exitcode == EXIT_DETERMINISTIC:
            self._record_attempt(job.job_id, "deterministic-error", detail)
            self._charge_failure(job, "deterministic sweep failure", deterministic=True)
            return
        reason = (
            f"worker died with signal {-exitcode}"
            if exitcode is not None and exitcode < 0
            else f"worker exited with code {exitcode}"
        )
        self._record_attempt(job.job_id, "crashed", detail)
        self._charge_failure(job, reason)

    def _charge_failure(self, job: Job, reason: str, *, deterministic: bool = False) -> None:
        """Charge one failed attempt; retry with backoff or trip the breaker."""
        failed = self.queue.transition(
            job.job_id,
            JobState.FAILED,
            error=reason,
            charge_attempt=not deterministic,
            charge_deterministic=deterministic,
        )
        exhausted = (
            failed.deterministic_failures >= self.max_deterministic_failures
            if deterministic
            else failed.attempts >= self.max_attempts
        )
        if exhausted:
            kind = "poison (deterministic failures)" if deterministic else "retries exhausted"
            logger.error("job %s is dead: %s (%s)", job.job_id, kind, reason)
            self._finalize(
                self.queue.transition(
                    failed.job_id, JobState.DEAD, error=f"{reason}; {kind}"
                )
            )
            self._inc("service.jobs.dead")
            return
        delay = self._backoff_delay_s(failed)
        logger.warning(
            "job %s attempt failed (%s); retrying in %.2fs", job.job_id, reason, delay
        )
        # Monotonic, not wall clock: an NTP step or DST jump must never
        # fire a backoff early or starve it (wall time stays confined to
        # the human-facing manifest/record timestamps).
        self.queue.transition(
            failed.job_id,
            JobState.QUEUED,
            error=reason,
            not_before_s=time.monotonic() + delay,
        )
        self._inc("service.jobs.retried")

    def _finalize(self, job: Job) -> None:
        """Write the terminal job's lifecycle manifest next to its checkpoints."""
        attempts = self._attempt_log.pop(job.job_id, [])
        manifest = obs_manifest.build_job_manifest(
            job=job.public_view(),
            attempts=attempts,
            result_path=(
                self.store.path(job.job_id) if job.state == JobState.DONE else None
            ),
        )
        path = obs_manifest.job_manifest_path(self.job_dir(job.job_id), job.job_id)
        try:
            obs_manifest.write_manifest(path, manifest)
        except OSError:
            logger.warning("could not write job manifest %s", path)
