"""``python -m repro.analysis`` — alias for the ``repro-lint`` script."""

import sys

from .cli import main

__all__ = ["main"]

if __name__ == "__main__":
    sys.exit(main())
