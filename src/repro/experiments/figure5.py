"""Experiment ``figure5``: laser power vs target BER per coding scheme.

Figure 5 sweeps the target BER from 1e-3 to 1e-12 for the 12-ONI,
16-wavelength, 6-cm MWSR channel and plots the per-wavelength electrical
laser power for transmissions without ECC, with H(71,64) and with H(7,4).
The uncoded curve is the highest everywhere and becomes infeasible at
BER = 1e-12 (the required optical power exceeds the 700 uW laser rating);
the coded curves stay feasible across the whole range.
"""

from __future__ import annotations

from dataclasses import asdict, dataclass, field
from typing import Dict, List, Sequence

import numpy as np

from ..coding.registry import paper_code_by_name, paper_code_set
from ..config import DEFAULT_CONFIG, PaperConfig
from ..link.design import LinkDesignPoint, OpticalLinkDesigner
from .paperdata import Comparison, PAPER_LASER_POWER_MW_AT_1E11

__all__ = [
    "Figure5Result",
    "run_figure5",
    "DEFAULT_BER_GRID",
    "sweep_shards",
    "run_sweep_shard",
    "merge_sweep",
]

#: The BER axis of Figure 5 (decades from 1e-3 down to 1e-12).
DEFAULT_BER_GRID: tuple[float, ...] = tuple(10.0 ** (-e) for e in range(3, 13))

#: Maximum BER points per orchestrator shard: small enough that a dense
#: sweep load-balances across workers, large enough to amortise dispatch.
DEFAULT_SHARD_SIZE = 16


@dataclass
class Figure5Result:
    """Laser power curves per coding scheme over the BER grid."""

    target_bers: tuple[float, ...]
    series: Dict[str, List[LinkDesignPoint]]
    comparisons: List[Comparison] = field(default_factory=list)

    def laser_power_mw(self, code_name: str) -> np.ndarray:
        """Laser power curve of one scheme, in mW (NaN where infeasible)."""
        points = self.series[code_name]
        return np.array(
            [p.laser_power_mw if p.feasible else np.nan for p in points]
        )

    def feasibility(self, code_name: str) -> np.ndarray:
        """Boolean feasibility of one scheme over the BER grid."""
        return np.array([p.feasible for p in self.series[code_name]])

    def point_at(self, code_name: str, target_ber: float) -> LinkDesignPoint:
        """The design point of one scheme at one BER target."""
        for point in self.series[code_name]:
            if np.isclose(point.target_ber, target_ber, rtol=1e-9, atol=0.0):
                return point
        raise KeyError(f"BER {target_ber:g} not in the sweep grid")

    def render_text(self) -> str:
        """Text table of the laser powers over the BER grid."""
        names = list(self.series)
        header = "BER        " + "".join(f"{name:>14s}" for name in names)
        lines = ["Figure 5 - P_laser vs target BER (mW per wavelength)", header]
        for i, ber in enumerate(self.target_bers):
            cells = []
            for name in names:
                point = self.series[name][i]
                cells.append(
                    f"{point.laser_power_mw:14.2f}" if point.feasible else f"{'infeasible':>14s}"
                )
            lines.append(f"{ber:10.0e} " + "".join(cells))
        lines.append("")
        lines.append("Comparison against the paper at BER = 1e-11:")
        lines.extend(c.render() for c in self.comparisons)
        return "\n".join(lines)


def _paper_comparisons(series: Dict[str, List[LinkDesignPoint]]) -> List[Comparison]:
    """Compare the 1e-11 laser powers of a sweep against the paper's values."""
    comparisons: List[Comparison] = []
    for name, reference in PAPER_LASER_POWER_MW_AT_1E11.items():
        if name not in series:
            continue
        try:
            measured = next(
                p.laser_power_mw
                for p in series[name]
                if np.isclose(p.target_ber, 1e-11, rtol=1e-9, atol=0.0)
            )
        except StopIteration:
            continue
        comparisons.append(
            Comparison(
                quantity=f"P_laser at BER 1e-11 [{name}]",
                measured=measured,
                reference=reference,
                unit="mW",
            )
        )
    return comparisons


def run_figure5(
    config: PaperConfig = DEFAULT_CONFIG,
    *,
    target_bers: Sequence[float] = DEFAULT_BER_GRID,
    codes: Sequence | None = None,
) -> Figure5Result:
    """Sweep the BER targets for every coding scheme of the paper."""
    designer = OpticalLinkDesigner(config=config)
    code_list = list(codes) if codes is not None else paper_code_set(config.ip_bus_width_bits)
    series: Dict[str, List[LinkDesignPoint]] = {}
    for code in code_list:
        series[code.name] = designer.sweep_ber(code, list(target_bers))
    return Figure5Result(
        target_bers=tuple(target_bers),
        series=series,
        comparisons=_paper_comparisons(series),
    )


# ------------------------------------------------------------------ grid API
def sweep_shards(config: PaperConfig = DEFAULT_CONFIG, options: dict | None = None) -> list[dict]:
    """Grid descriptor: shards of (code, BER-chunk) operating-point solves.

    The BER axis of each code is chunked into at most ``shard_size`` points
    per shard, so dense sweeps (the orchestrator benchmark runs hundreds of
    points per code) load-balance across workers.  ``options`` may override
    ``target_bers``, ``codes`` (names) and ``shard_size``.
    """
    options = options or {}
    target_bers = [float(ber) for ber in options.get("target_bers", DEFAULT_BER_GRID)]
    code_names = options.get(
        "codes", [code.name for code in paper_code_set(config.ip_bus_width_bits)]
    )
    shard_size = int(options.get("shard_size", DEFAULT_SHARD_SIZE))
    if shard_size < 1:
        shard_size = DEFAULT_SHARD_SIZE
    shards = []
    for name in code_names:
        for start in range(0, len(target_bers), shard_size):
            shards.append({"code": name, "target_bers": target_bers[start : start + shard_size]})
    return shards


def run_sweep_shard(params: dict, config: PaperConfig = DEFAULT_CONFIG) -> dict:
    """Worker: solve one code's chunk of operating points; JSON payload."""
    designer = OpticalLinkDesigner(config=config)
    code = paper_code_by_name(params["code"], config.ip_bus_width_bits)
    points = designer.sweep_ber(code, params["target_bers"])
    return {"code": params["code"], "points": [asdict(point) for point in points]}


def merge_sweep(
    payloads: Sequence[dict],
    config: PaperConfig = DEFAULT_CONFIG,
    options: dict | None = None,
) -> tuple[str, list[dict]]:
    """Assemble shard payloads into the (text report, CSV rows) pair.

    Shards arrive in grid order, so concatenating each code's chunks
    reproduces exactly the series a serial :func:`run_figure5` builds.
    """
    options = options or {}
    target_bers = tuple(float(ber) for ber in options.get("target_bers", DEFAULT_BER_GRID))
    series: Dict[str, List[LinkDesignPoint]] = {}
    for payload in payloads:
        series.setdefault(payload["code"], []).extend(
            LinkDesignPoint(**point) for point in payload["points"]
        )
    result = Figure5Result(
        target_bers=target_bers, series=series, comparisons=_paper_comparisons(series)
    )
    rows = [
        {
            "code": name,
            "target_ber": point.target_ber,
            "op_laser_uw": point.laser_output_power_uw,
            "p_laser_mw": point.laser_power_mw,
            "feasible": point.feasible,
        }
        for name, points in result.series.items()
        for point in points
    ]
    return result.render_text(), rows
