"""Chaos tests: the service survives worker kills, hangs and disk damage.

Extends the orchestrator's fault-injection grid
(``tests/experiments/faultinject.py``) to the service layer.  The recovery
claim under test is strict: after any injected fault — a SIGKILLed worker,
a hang past the job timeout, a truncated results artefact, a corrupted
queue record — the job still completes and its result is **byte-identical**
to an uninterrupted serial run (position-keyed shard seeds + checkpoint
salvage make the retry recompute only what was lost).
"""

from __future__ import annotations

import json
import multiprocessing
import os
import signal
import sys
import time

import pytest

sys.path.insert(0, os.path.join(os.path.dirname(__file__), "..", "experiments"))
import faultinject  # noqa: E402

from repro.service import ServiceConfig, SimulationService  # noqa: E402
from repro.service.models import JobState  # noqa: E402

from test_service_api import poll_until_terminal, request  # noqa: E402

pytestmark = pytest.mark.skipif(
    "fork" not in multiprocessing.get_all_start_methods(),
    reason="service workers require the fork start method",
)

faultinject.install()

#: Tight supervisor budgets so retries happen in test time, not minutes.
FAST = dict(backoff_base_s=0.05, backoff_cap_s=0.2)


def _service(tmp_path, **overrides):
    config = ServiceConfig(**{**FAST, **overrides})
    return SimulationService(data_dir=str(tmp_path / "data"), service_config=config)


def _options(work_dir, **faults):
    return {"work_dir": str(work_dir), "num_shards": 4, **faults}


def _serial_expectation(tmp_path):
    """The fault-free reference result, computed without the service."""
    from repro.experiments.orchestrator import run_experiment

    clean = tmp_path / "reference"
    clean.mkdir()
    text, rows = run_experiment(
        faultinject.EXPERIMENT, options=_options(clean)
    )
    return text, rows


def _submit(base, options):
    status, payload, _ = request(
        f"{base}/jobs", "POST", {"experiment": faultinject.EXPERIMENT, "options": options}
    )
    assert status == 202, payload
    return payload["job_id"]


class TestWorkerDeath:
    def test_sigkilled_worker_recovers_byte_identical(self, tmp_path):
        """A shard SIGKILLs the forked job worker; the retry resumes and wins."""
        expected_text, expected_rows = _serial_expectation(tmp_path)
        work = tmp_path / "work"
        work.mkdir()
        svc = _service(tmp_path)
        svc.start()
        try:
            job_id = _submit(svc.url, _options(work, kill_once=[2]))
            final = poll_until_terminal(svc.url, job_id, deadline_s=90.0)
            assert final["state"] == JobState.DONE
            assert final["attempts"] == 1  # exactly one charged failure

            status, payload, _ = request(f"{svc.url}/jobs/{job_id}/result")
            assert status == 200
            assert payload["result"]["text"] == expected_text
            assert payload["result"]["rows"] == expected_rows

            # checkpoint salvage: shards 0 and 1 landed before the kill and
            # were not re-executed on the retry
            counts = faultinject.attempt_counts(str(work))
            assert counts[0] == 1 and counts[1] == 1
            assert counts[2] == 2  # the killer shard ran twice
        finally:
            svc.stop(drain_timeout_s=10.0)

    def test_sigkill_by_pid_mid_job(self, tmp_path):
        """Killing the worker process externally is survived the same way."""
        expected_text, _ = _serial_expectation(tmp_path)
        work = tmp_path / "work"
        work.mkdir()
        svc = _service(tmp_path)
        svc.start()
        try:
            job_id = _submit(svc.url, _options(work, sleep_s=0.2))
            deadline = time.monotonic() + 30.0
            pid = None
            while pid is None and time.monotonic() < deadline:
                pid = svc.supervisor.active_worker_pid()
                time.sleep(0.01)
            assert pid is not None, "worker never started"
            os.kill(pid, signal.SIGKILL)

            final = poll_until_terminal(svc.url, job_id, deadline_s=90.0)
            assert final["state"] == JobState.DONE
            status, payload, _ = request(f"{svc.url}/jobs/{job_id}/result")
            assert payload["result"]["text"] == expected_text
        finally:
            svc.stop(drain_timeout_s=10.0)

    def test_hang_past_job_timeout_is_terminated_and_retried(self, tmp_path):
        expected_text, _ = _serial_expectation(tmp_path)
        work = tmp_path / "work"
        work.mkdir()
        svc = _service(tmp_path, job_timeout_s=1.5)
        svc.start()
        try:
            job_id = _submit(
                svc.url, _options(work, hang_once=[1], hang_seconds=30.0)
            )
            final = poll_until_terminal(svc.url, job_id, deadline_s=90.0)
            assert final["state"] == JobState.DONE
            assert final["attempts"] >= 1  # the timeout was charged
            status, payload, _ = request(f"{svc.url}/jobs/{job_id}/result")
            assert payload["result"]["text"] == expected_text
        finally:
            svc.stop(drain_timeout_s=10.0)

    def test_deterministic_failure_trips_the_circuit_breaker(self, tmp_path):
        work = tmp_path / "work"
        work.mkdir()
        svc = _service(tmp_path, max_deterministic_failures=2)
        svc.start()
        try:
            job_id = _submit(svc.url, _options(work, raise_on=[3]))
            final = poll_until_terminal(svc.url, job_id, deadline_s=90.0)
            assert final["state"] == JobState.DEAD
            assert final["deterministic_failures"] == 2
            # poison: never burned the transient-retry budget
            assert final["attempts"] == 0
            status, payload, _ = request(f"{svc.url}/jobs/{job_id}/result")
            assert status == 409
        finally:
            svc.stop(drain_timeout_s=10.0)


class TestDiskDamage:
    def _completed_job(self, svc, work):
        job_id = _submit(svc.url, _options(work))
        final = poll_until_terminal(svc.url, job_id, deadline_s=90.0)
        assert final["state"] == JobState.DONE
        return job_id

    def test_truncated_result_is_quarantined_and_recomputed(self, tmp_path):
        expected_text, expected_rows = _serial_expectation(tmp_path)
        work = tmp_path / "work"
        work.mkdir()
        svc = _service(tmp_path)
        svc.start()
        try:
            job_id = self._completed_job(svc, work)
            artefact = svc.store.path(job_id)
            original = open(artefact, encoding="utf-8").read()
            with open(artefact, "w", encoding="utf-8") as handle:
                handle.write(original[: len(original) // 3])

            status, payload, _ = request(f"{svc.url}/jobs/{job_id}/result")
            assert status == 503  # damage found, job re-queued
            assert os.path.exists(artefact + ".corrupt")

            final = poll_until_terminal(svc.url, job_id, deadline_s=90.0)
            assert final["state"] == JobState.DONE
            status, payload, _ = request(f"{svc.url}/jobs/{job_id}/result")
            assert status == 200
            assert payload["result"]["text"] == expected_text
            assert payload["result"]["rows"] == expected_rows
        finally:
            svc.stop(drain_timeout_s=10.0)

    def test_garbage_result_on_resubmission_path(self, tmp_path):
        """A damaged artefact discovered at submission time self-heals too."""
        work = tmp_path / "work"
        work.mkdir()
        svc = _service(tmp_path)
        svc.start()
        try:
            job_id = self._completed_job(svc, work)
            artefact = svc.store.path(job_id)
            with open(artefact, "w", encoding="utf-8") as handle:
                handle.write("not json at all")

            options = _options(work)
            status, payload, _ = request(
                f"{svc.url}/jobs",
                "POST",
                {"experiment": faultinject.EXPERIMENT, "options": options},
            )
            assert status == 202 and payload["created"] is False
            assert payload["state"] == JobState.QUEUED
            final = poll_until_terminal(svc.url, job_id, deadline_s=90.0)
            assert final["state"] == JobState.DONE
        finally:
            svc.stop(drain_timeout_s=10.0)

    def test_corrupt_queue_record_is_quarantined_on_restart(self, tmp_path):
        work = tmp_path / "work"
        work.mkdir()
        svc = _service(tmp_path)
        svc.start()
        try:
            job_id = self._completed_job(svc, work)
        finally:
            svc.stop(drain_timeout_s=10.0)

        record = os.path.join(str(tmp_path / "data"), "queue", f"{job_id}.json")
        document = json.loads(open(record, encoding="utf-8").read())
        document["job"]["state"] = JobState.QUEUED  # tamper: checksum now wrong
        with open(record, "w", encoding="utf-8") as handle:
            json.dump(document, handle)

        reborn = _service(tmp_path)
        reborn.start()
        try:
            assert os.path.exists(record + ".corrupt")
            # the job is forgotten; submitting the same grid is a fresh job
            status, payload, _ = request(f"{reborn.url}/jobs/{job_id}")
            assert status == 404
            job_again = _submit(reborn.url, _options(work))
            assert job_again == job_id
            final = poll_until_terminal(reborn.url, job_again, deadline_s=90.0)
            assert final["state"] == JobState.DONE
        finally:
            reborn.stop(drain_timeout_s=10.0)


class TestDrain:
    def test_stop_requeues_the_running_job_for_the_next_life(self, tmp_path):
        expected_text, _ = _serial_expectation(tmp_path)
        work = tmp_path / "work"
        work.mkdir()
        svc = _service(tmp_path, job_timeout_s=60.0)
        svc.start()
        job_id = _submit(svc.url, _options(work, sleep_s=0.4))
        deadline = time.monotonic() + 30.0
        while svc.supervisor.active_worker_pid() is None:
            assert time.monotonic() < deadline, "worker never started"
            time.sleep(0.01)
        svc.stop(drain_timeout_s=20.0)

        # the interrupted job went back to queued, uncharged
        reborn = _service(tmp_path)
        try:
            job = reborn.queue.get(job_id)
            assert job.state == JobState.QUEUED
            assert job.attempts == 0
            reborn.start()
            final = poll_until_terminal(reborn.url, job_id, deadline_s=90.0)
            assert final["state"] == JobState.DONE
            status, payload, _ = request(f"{reborn.url}/jobs/{job_id}/result")
            assert payload["result"]["text"] == expected_text
        finally:
            reborn.stop(drain_timeout_s=10.0)

    def test_job_manifest_records_every_attempt(self, tmp_path):
        from repro.obs.manifest import job_manifest_path, load_manifest

        work = tmp_path / "work"
        work.mkdir()
        svc = _service(tmp_path)
        svc.start()
        try:
            job_id = _submit(svc.url, _options(work, kill_once=[1]))
            final = poll_until_terminal(svc.url, job_id, deadline_s=90.0)
            assert final["state"] == JobState.DONE
            path = job_manifest_path(svc.supervisor.job_dir(job_id), job_id)
            manifest = load_manifest(path)
            assert manifest["kind"] == "job-manifest"
            assert manifest["job"]["state"] == JobState.DONE
            outcomes = [attempt["outcome"] for attempt in manifest["attempts"]]
            assert outcomes == ["crashed", "done"]
            assert manifest["result_path"] == svc.store.path(job_id)
        finally:
            svc.stop(drain_timeout_s=10.0)
