"""Experiment ``network``: latency-vs-injection-rate load sweep of the ring.

The paper's headline claim (ECC/laser management saving ~22 W across the
whole interconnect) is a network-level statement, but the figure
experiments evaluate single links.  This experiment drives the
discrete-event engine of :mod:`repro.netsim` over a grid of traffic
pattern x injection rate x manager policy and reports, per grid point, the
latency distribution (with warm-up trimming), offered vs delivered
throughput, channel utilisation, energy per delivered bit and the ARQ
retransmission accounting.

Injection rate is expressed as a *relative load*: the network-wide request
rate is chosen so the offered payload bit rate equals ``load`` times the
aggregate serialisation bandwidth of the ring (``num_onis`` channels of
``NW x Fmod``).  Uniform traffic spreads that load evenly; hotspot traffic
saturates the hot reader's channel first and bursty traffic adds heavy
frame-size variance — the three canonical shapes of the load/latency
curve.

The grid descriptor shards one (pattern, load, policy, ring) point per
shard, each rebuilding its generators from ``SeedSequence(seed,
spawn_key=(spawn_index, stream))``, so ``repro-experiments network
--jobs N`` is byte-identical to the serial run.  ``options["rings"]``
replicates every grid point across that many independent rings (distinct
seeds, same configuration) — the multi-ring scale-out path: rings shard
across orchestrator workers and their rows merge into one aggregate row
per grid point (extensive counters summed exactly, rates and latency
percentiles combined as completed-weighted means).  ``options["engine"]``
selects the simulator's event engine (``"batched"`` by default,
``"reference"`` for the legacy per-event loop).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Sequence

import numpy as np

from ..config import DEFAULT_CONFIG, PaperConfig
from ..exceptions import ConfigurationError
from ..manager.policies import (
    DeadlineConstrainedPolicy,
    MinimumEnergyPolicy,
    MinimumPowerPolicy,
)
from ..netsim import ENGINES, NetworkSimulator
from ..traffic.generators import (
    BurstyTrafficGenerator,
    HotspotTrafficGenerator,
    UniformTrafficGenerator,
)

__all__ = [
    "NetworkSweepResult",
    "run_network",
    "request_rate_for_load",
    "sweep_shards",
    "run_sweep_shard",
    "merge_sweep",
    "DEFAULT_PATTERNS",
    "DEFAULT_LOADS",
    "DEFAULT_POLICIES",
]

#: Default sweep axes: every canonical traffic shape, four load points from
#: light load to near saturation, and the two headline manager policies.
DEFAULT_PATTERNS: tuple[str, ...] = ("uniform", "hotspot", "bursty")
DEFAULT_LOADS: tuple[float, ...] = (0.1, 0.3, 0.5, 0.7)
DEFAULT_POLICIES: tuple[str, ...] = ("min-power", "min-energy")
DEFAULT_NUM_REQUESTS = 1200
DEFAULT_PAYLOAD_BITS = 4096
DEFAULT_TARGET_BER = 1e-9
DEFAULT_SEED = 2026

#: Policies the sweep can select by name (JSON-serializable grid values).
_POLICY_FACTORIES = {
    "min-power": lambda: MinimumPowerPolicy(),
    "min-energy": lambda: MinimumEnergyPolicy(),
    "deadline-1.2": lambda: DeadlineConstrainedPolicy(max_communication_time=1.2),
}


def request_rate_for_load(
    load: float, config: PaperConfig = DEFAULT_CONFIG, *, payload_bits: int = DEFAULT_PAYLOAD_BITS
) -> float:
    """Network-wide Poisson request rate producing a given relative load.

    ``load`` references the offered *payload* bit rate to the aggregate
    serialisation bandwidth (one waveguide group per channel); coding
    overhead pushes the effective channel load slightly higher, which is
    exactly the knee the sweep is after.
    """
    if load <= 0.0:
        raise ConfigurationError("relative load must be positive")
    aggregate = config.num_onis * config.num_wavelengths * config.modulation_rate_hz
    return load * aggregate / payload_bits


def _make_generator(
    pattern: str,
    *,
    config: PaperConfig,
    rate_hz: float,
    payload_bits: int,
    target_ber: float,
    seed: np.random.SeedSequence,
):
    """Build the traffic generator of one grid point (seeded by position)."""
    if pattern == "uniform":
        return UniformTrafficGenerator(
            config.num_onis,
            mean_request_rate_hz=rate_hz,
            payload_bits=payload_bits,
            target_ber=target_ber,
            seed=seed,
        )
    if pattern == "hotspot":
        return HotspotTrafficGenerator(
            config.num_onis,
            hotspot=0,
            hotspot_fraction=0.5,
            mean_request_rate_hz=rate_hz,
            payload_bits=payload_bits,
            target_ber=target_ber,
            seed=seed,
        )
    if pattern == "bursty":
        return BurstyTrafficGenerator(
            config.num_onis,
            mean_request_rate_hz=rate_hz,
            frame_bits=payload_bits,
            target_ber=target_ber,
            seed=seed,
        )
    raise ConfigurationError(
        f"unknown traffic pattern {pattern!r}; available: uniform, hotspot, bursty"
    )


@dataclass
class NetworkSweepResult:
    """Rows of the load sweep (one per pattern x load x policy point)."""

    rows: List[dict]
    num_requests: int
    mode: str

    def rows_for(self, pattern: str, policy: str) -> List[dict]:
        """The load series of one (pattern, policy) curve."""
        return [
            row for row in self.rows if row["pattern"] == pattern and row["policy"] == policy
        ]

    def to_rows(self) -> List[dict]:
        """CSV rows for the experiment runner."""
        return list(self.rows)

    def render_text(self) -> str:
        """Human-readable latency/throughput/energy table."""
        header = (
            f"{'pattern':<9} {'policy':<11} {'load':>5} {'p50 lat':>10} {'p99 lat':>10} "
            f"{'delivered':>12} {'peak util':>10} {'E/bit':>9} {'retx':>7} {'drop':>5}"
        )
        units = (
            f"{'':<9} {'':<11} {'':>5} {'(ns)':>10} {'(ns)':>10} "
            f"{'(Gb/s)':>12} {'':>10} {'(pJ)':>9} {'':>7} {'':>5}"
        )
        lines = [
            "Network load sweep - discrete-event MWSR ring "
            f"({self.num_requests} requests per point, {self.mode} fault mode)",
            header,
            units,
            "-" * len(header),
        ]
        for row in self.rows:
            lines.append(
                f"{row['pattern']:<9} {row['policy']:<11} {row['load']:5.2f} "
                f"{row['latency_p50_s'] * 1e9:10.1f} {row['latency_p99_s'] * 1e9:10.1f} "
                f"{row['delivered_gbps']:12.1f} {row['peak_utilization']:10.3f} "
                f"{row['energy_per_bit_pj']:9.3f} {row['retransmission_rate']:7.4f} "
                f"{row['packets_dropped']:5d}"
            )
        lines.append(
            "Latency percentiles are warm-up trimmed; load references the offered "
            "payload rate to the aggregate serialisation bandwidth."
        )
        return "\n".join(lines)


# ------------------------------------------------------------------ grid API
def sweep_shards(config: PaperConfig = DEFAULT_CONFIG, options: dict | None = None) -> list[dict]:
    """Grid descriptor: one shard per (pattern, load, policy, ring) point.

    ``options`` may override ``patterns``, ``loads``, ``policies``,
    ``num_requests``, ``payload_bits``, ``target_ber``, ``packet_bits``,
    ``mode``, ``engine``, ``rings``, ``max_retries``, ``warmup_fraction``
    and ``seed`` (all JSON-serializable; they become part of the checkpoint
    fingerprint).  ``rings`` replicates each grid point across that many
    independently seeded rings, one shard per ring, so ``--jobs`` spreads
    the replicas across workers; their rows merge back into one aggregate
    row per grid point.
    """
    options = options or {}
    patterns = list(options.get("patterns", DEFAULT_PATTERNS))
    loads = [float(load) for load in options.get("loads", DEFAULT_LOADS)]
    policies = list(options.get("policies", DEFAULT_POLICIES))
    for policy in policies:
        if policy not in _POLICY_FACTORIES:
            raise ConfigurationError(
                f"unknown policy {policy!r}; available: {sorted(_POLICY_FACTORIES)}"
            )
    engine = str(options.get("engine", "batched"))
    if engine not in ENGINES:
        raise ConfigurationError(f"unknown engine {engine!r}; available: {ENGINES}")
    rings = int(options.get("rings", 1))
    if rings < 1:
        raise ConfigurationError("rings must be a positive integer")
    shards = []
    spawn_index = 0
    for pattern in patterns:
        for policy in policies:
            for load in loads:
                for ring in range(rings):
                    shards.append(
                        {
                            "pattern": pattern,
                            "policy": policy,
                            "load": load,
                            "ring": ring,
                            "rings": rings,
                            "engine": engine,
                            "num_requests": int(options.get("num_requests", DEFAULT_NUM_REQUESTS)),
                            "payload_bits": int(options.get("payload_bits", DEFAULT_PAYLOAD_BITS)),
                            "target_ber": float(options.get("target_ber", DEFAULT_TARGET_BER)),
                            "packet_bits": int(options.get("packet_bits", 512)),
                            "mode": str(options.get("mode", "probabilistic")),
                            "max_retries": int(options.get("max_retries", 4)),
                            "warmup_fraction": float(options.get("warmup_fraction", 0.1)),
                            "seed": int(options.get("seed", DEFAULT_SEED)),
                            "spawn_index": spawn_index,
                        }
                    )
                    spawn_index += 1
    return shards


def run_sweep_shard(params: dict, config: PaperConfig = DEFAULT_CONFIG) -> dict:
    """Worker: simulate one (pattern, load, policy, ring) point; JSON payload.

    Traffic and engine rebuild their generators from
    ``SeedSequence(seed, spawn_key=(spawn_index, stream))``, so the payload
    depends only on the grid position — the property that makes parallel
    sweeps byte-identical to serial ones.  A ring is one more grid axis:
    its spawn index (hence its streams) differs from every other ring's.
    """
    rate_hz = request_rate_for_load(
        params["load"], config, payload_bits=params["payload_bits"]
    )
    generator = _make_generator(
        params["pattern"],
        config=config,
        rate_hz=rate_hz,
        payload_bits=params["payload_bits"],
        target_ber=params["target_ber"],
        seed=np.random.SeedSequence(params["seed"], spawn_key=(params["spawn_index"], 0)),
    )
    simulator = NetworkSimulator(
        config=config,
        policy=_POLICY_FACTORIES[params["policy"]](),
        mode=params["mode"],
        engine=params.get("engine", "batched"),
        packet_bits=params["packet_bits"],
        max_retries=params["max_retries"],
        warmup_fraction=params["warmup_fraction"],
        seed=np.random.SeedSequence(params["seed"], spawn_key=(params["spawn_index"], 1)),
    )
    result = simulator.run(generator.generate(params["num_requests"]))
    payload = {
        "pattern": params["pattern"],
        "policy": params["policy"],
        "load": params["load"],
    }
    if params.get("rings", 1) > 1:
        payload["ring"] = params.get("ring", 0)
    payload.update(result.metrics().as_dict())
    return payload


#: Extensive counters: summing over rings is exact.
_MERGE_SUM_KEYS = frozenset(
    {
        "transfers_completed",
        "transfers_rejected",
        "warmup_transfers_trimmed",
        "packets_sent",
        "packets_delivered",
        "packets_dropped",
        "packets_retried",
        "transfers_dropped",
        "undetected_corrupt_packets",
        "configuration_switches",
        "fault_transitions",
        "recoveries",
        "reconfiguration_energy_j",
        "total_energy_j",
        "channel_downtime_s",
        "offered_gbps",
        "delivered_gbps",
    }
)
#: Envelope statistics: the aggregate's extreme is the rings' extreme.
_MERGE_MAX_KEYS = frozenset({"sim_end_time_s", "peak_utilization"})
#: Intensive statistics merged as weighted means — the weight is the count
#: the statistic was computed over.  Percentile merging is approximate
#: (the exact pooled percentile would need the raw latencies), which the
#: sweep accepts: rings are i.i.d. replicas, so completed-weighted means
#: of their percentiles converge on the pooled values.
_MERGE_WEIGHT_KEYS = {
    "latency_mean_s": "transfers_completed",
    "latency_p50_s": "transfers_completed",
    "latency_p95_s": "transfers_completed",
    "latency_p99_s": "transfers_completed",
    "retransmission_rate": "packets_sent",
    "packet_drop_rate": "packets_sent",
    "delivered_packet_error_rate": "packets_delivered",
    "delivered_bit_error_rate": "packets_delivered",
    "crc_escape_rate": "packets_delivered",
    "mean_time_to_recover_s": "recoveries",
}


def _weighted_mean(values, weights) -> float:
    total = sum(weights)
    if total <= 0:
        return sum(values) / len(values)
    return sum(v * w for v, w in zip(values, weights)) / total


def _merge_ring_rows(rows: Sequence[dict]) -> dict:
    """Collapse one grid point's per-ring rows into its aggregate row."""
    if len(rows) == 1:
        row = dict(rows[0])
        row.pop("ring", None)
        return row
    merged: dict = {}
    for key in rows[0]:
        if key == "ring":
            continue
        values = [row[key] for row in rows]
        if key in ("pattern", "policy", "load"):
            merged[key] = values[0]
        elif key in _MERGE_SUM_KEYS:
            merged[key] = sum(values)
        elif key in _MERGE_MAX_KEYS:
            merged[key] = max(values)
        elif key == "energy_per_bit_pj":
            # Exact: recover each ring's delivered bits from its own
            # energy-per-bit, then divide pooled energy by pooled bits.
            energies = [row["total_energy_j"] for row in rows]
            bits = [e / (pj * 1e-12) for e, pj in zip(energies, values) if pj > 0.0]
            merged[key] = (
                sum(e for e, pj in zip(energies, values) if pj > 0.0) / sum(bits) * 1e12
                if bits
                else 0.0
            )
        else:
            weight_key = _MERGE_WEIGHT_KEYS.get(key)
            weights = (
                [row[weight_key] for row in rows]
                if weight_key is not None
                else [1.0] * len(rows)
            )
            merged[key] = _weighted_mean(values, weights)
    return merged


def _merge_payloads(payloads: Sequence[dict]) -> list[dict]:
    """Group shard payloads by grid point and merge each point's rings."""
    groups: dict[tuple, list[dict]] = {}
    for row in payloads:
        groups.setdefault((row["pattern"], row["policy"], row["load"]), []).append(row)
    return [_merge_ring_rows(rows) for rows in groups.values()]


def merge_sweep(
    payloads: Sequence[dict],
    config: PaperConfig = DEFAULT_CONFIG,
    options: dict | None = None,
) -> tuple[str, list[dict]]:
    """Assemble shard payloads into the (text report, CSV rows) pair.

    Per-ring payloads of the same (pattern, policy, load) point merge into
    one aggregate row; with ``rings=1`` (the default) this is the identity
    and the output is unchanged from the single-ring sweep.
    """
    options = options or {}
    result = NetworkSweepResult(
        rows=_merge_payloads(payloads),
        num_requests=int(options.get("num_requests", DEFAULT_NUM_REQUESTS)),
        mode=str(options.get("mode", "probabilistic")),
    )
    return result.render_text(), result.to_rows()


def run_network(
    config: PaperConfig = DEFAULT_CONFIG,
    *,
    options: dict | None = None,
) -> NetworkSweepResult:
    """Run the full load sweep serially and return the structured result."""
    payloads = [run_sweep_shard(params, config) for params in sweep_shards(config, options)]
    options = options or {}
    return NetworkSweepResult(
        rows=_merge_payloads(payloads),
        num_requests=int(options.get("num_requests", DEFAULT_NUM_REQUESTS)),
        mode=str(options.get("mode", "probabilistic")),
    )
