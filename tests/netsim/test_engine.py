"""Correctness anchors of the discrete-event network simulator.

The three anchors the issue pins down:

* at zero contention the per-transfer latency/energy matches the analytic
  :class:`~repro.manager.runtime.RuntimeSimulation` to float tolerance;
* under saturation the token arbiter serves every writer fairly;
* the probabilistic and bit-exact fault modes agree on the delivered
  packet/bit error rates within Monte-Carlo error under a fixed seed.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.coding.hamming import HammingCode
from repro.exceptions import ConfigurationError, SimulationError
from repro.manager.manager import CommunicationRequest, OpticalLinkManager
from repro.manager.policies import DeadlineConstrainedPolicy, MinimumEnergyPolicy
from repro.manager.runtime import AdaptiveEccController, RuntimeSimulation
from repro.netsim import NetworkSimulator
from repro.traffic.generators import (
    HotspotTrafficGenerator,
    TrafficRequest,
    UniformTrafficGenerator,
)


def _single_stream_requests(count: int, *, payload_bits: int = 512, spacing_s: float = 1e-3):
    """Back-to-back requests of one writer to one reader, far apart in time."""
    return [
        TrafficRequest(
            arrival_time_s=(index + 1) * spacing_s,
            source=1,
            destination=0,
            payload_bits=payload_bits,
            target_ber=1e-9,
        )
        for index in range(count)
    ]


class TestZeroContentionParity:
    """Anchor (a): one writer, one stream — netsim equals RuntimeSimulation."""

    @pytest.fixture(scope="class")
    def pair(self):
        requests = _single_stream_requests(20)
        simulator = NetworkSimulator(crc=None, max_retries=0, packet_bits=64, seed=0)
        result = simulator.run(requests)
        runtime = RuntimeSimulation(manager=OpticalLinkManager())
        outcomes = runtime.run(
            (
                CommunicationRequest(
                    source=request.source,
                    destination=request.destination,
                    target_ber=request.target_ber,
                    payload_bits=request.payload_bits,
                ),
                None,
            )
            for request in requests
        )
        return result.records, outcomes

    def test_same_configuration_selected(self, pair):
        records, outcomes = pair
        for record, outcome in zip(records, outcomes):
            assert record.code_name == outcome.configuration.code_name

    def test_serialization_time_matches_to_float_tolerance(self, pair):
        records, outcomes = pair
        for record, outcome in zip(records, outcomes):
            duration = record.completion_time_s - record.first_start_time_s
            assert duration == pytest.approx(outcome.duration_s, rel=1e-12)

    def test_latency_is_pure_serialization_without_contention(self, pair):
        records, outcomes = pair
        for record, outcome in zip(records, outcomes):
            assert record.latency_s == pytest.approx(outcome.duration_s, rel=1e-12)

    def test_energy_matches_to_float_tolerance(self, pair):
        records, outcomes = pair
        for record, outcome in zip(records, outcomes):
            assert record.energy_j == pytest.approx(outcome.energy_j, rel=1e-12)


class TestSaturationFairness:
    """Anchor (b): under saturation the arbiter serves writers fairly."""

    def test_equal_backlogs_get_equal_grants(self):
        # Every writer of reader 0's channel has 8 transfers queued at t=0:
        # round-robin token arbitration must grant each exactly its 8.
        requests = []
        for round_index in range(8):
            for writer in range(1, 12):
                requests.append(
                    TrafficRequest(
                        arrival_time_s=0.0,
                        source=writer,
                        destination=0,
                        payload_bits=512,
                        target_ber=1e-9,
                    )
                )
        result = NetworkSimulator(crc=None, max_retries=0, seed=3).run(requests)
        grants = result.grant_counts_by_reader[0]
        assert set(grants) == set(range(1, 12))
        assert all(count == 8 for count in grants.values())

    def test_poisson_saturation_has_bounded_grant_spread(self):
        # Overloaded hotspot channel: grants may only differ by the Poisson
        # noise of the per-writer arrival counts, never by starvation.
        traffic = HotspotTrafficGenerator(
            12,
            hotspot=0,
            hotspot_fraction=1.0,
            mean_request_rate_hz=1e9,
            payload_bits=4096,
            seed=17,
        )
        result = NetworkSimulator(crc=None, max_retries=0, seed=23).run(
            traffic.generate(1100)
        )
        grants = result.grant_counts_by_reader[0]
        counts = [grants[writer] for writer in range(1, 12)]
        mean = sum(counts) / len(counts)
        assert min(counts) > 0
        assert (max(counts) - min(counts)) < 0.6 * mean

    def test_saturated_channel_is_fully_utilized(self):
        requests = [
            TrafficRequest(0.0, writer, 0, 8192, 1e-9) for writer in range(1, 12)
        ] * 4
        result = NetworkSimulator(crc=None, max_retries=0, seed=5).run(requests)
        metrics = result.metrics(warmup_fraction=0.0)
        # Not exactly 1.0: the token costs a hop or two between grants.
        assert metrics.channel_utilization[0] > 0.97
        assert metrics.channel_utilization[0] <= 1.0


class TestFaultModeAgreement:
    """Anchor (c): probabilistic vs bit-exact delivered error rates agree."""

    @pytest.fixture(scope="class")
    def results(self):
        # A single-code manager pins the configuration to H(7,4) at a
        # Monte-Carlo-friendly target (raw BER a few percent), CRC/ARQ off
        # so every corrupted packet is delivered and measurable.
        outcomes = {}
        for mode in ("probabilistic", "bit-exact"):
            manager = OpticalLinkManager(codes=[HammingCode(3)])
            traffic = UniformTrafficGenerator(
                12,
                mean_request_rate_hz=1e6,
                payload_bits=512,
                target_ber=1e-2,
                seed=101,
            )
            simulator = NetworkSimulator(
                manager=manager,
                mode=mode,
                crc=None,
                max_retries=0,
                packet_bits=64,
                seed=202,
            )
            outcomes[mode] = simulator.run(traffic.generate(400)).metrics(
                warmup_fraction=0.0
            )
        return outcomes

    def test_both_modes_observe_errors(self, results):
        for metrics in results.values():
            assert metrics.packets_with_residual_errors > 50

    def test_delivered_packet_error_rate_agrees(self, results):
        probabilistic = results["probabilistic"].delivered_packet_error_rate
        bit_exact = results["bit-exact"].delivered_packet_error_rate
        assert probabilistic == pytest.approx(bit_exact, rel=0.10)

    def test_delivered_bit_error_rate_agrees(self, results):
        probabilistic = results["probabilistic"].delivered_bit_error_rate
        bit_exact = results["bit-exact"].delivered_bit_error_rate
        assert probabilistic == pytest.approx(bit_exact, rel=0.25)

    def test_bit_error_rate_agrees_with_frame_padding(self):
        # Regression: packets that do not fill their ECC frame (here 50
        # payload bits in a 64-bit uncoded block) must not overcount
        # residual errors landing in the padding region.  Uncoded links
        # pass the raw BER straight through, so both modes must measure a
        # delivered-bit BER of ~the design raw BER (1e-2 at this target).
        from repro.coding.uncoded import UncodedScheme

        rates = {}
        for mode in ("probabilistic", "bit-exact"):
            simulator = NetworkSimulator(
                manager=OpticalLinkManager(codes=[UncodedScheme(64)]),
                mode=mode,
                crc=None,
                max_retries=0,
                packet_bits=50,
                seed=303,
            )
            traffic = UniformTrafficGenerator(
                12, mean_request_rate_hz=1e6, payload_bits=500, target_ber=1e-2, seed=404
            )
            rates[mode] = (
                simulator.run(traffic.generate(300))
                .metrics(warmup_fraction=0.0)
                .delivered_bit_error_rate
            )
        assert rates["probabilistic"] == pytest.approx(1e-2, rel=0.15)
        assert rates["probabilistic"] == pytest.approx(rates["bit-exact"], rel=0.15)

    def test_identical_timing_across_modes(self, results):
        # Fault sampling must not perturb the event timeline: both modes
        # serialise the same coded bits through the same arbitration.
        assert results["probabilistic"].sim_end_time_s == pytest.approx(
            results["bit-exact"].sim_end_time_s, rel=1e-12
        )


class TestArqRetransmission:
    def _noisy_simulator(self, *, max_retries: int, seed: int = 31) -> NetworkSimulator:
        return NetworkSimulator(
            manager=OpticalLinkManager(codes=[HammingCode(3)]),
            crc="crc16-ccitt",
            max_retries=max_retries,
            packet_bits=64,
            seed=seed,
        )

    def _noisy_traffic(self, count: int = 150):
        return UniformTrafficGenerator(
            12,
            mean_request_rate_hz=1e6,
            payload_bits=512,
            target_ber=1e-2,
            seed=47,
        ).generate(count)

    def test_arq_retransmits_and_cleans_up_delivery(self):
        metrics = self._noisy_simulator(max_retries=6).run(self._noisy_traffic()).metrics()
        assert metrics.retransmission_rate > 0.05
        # At ~40% packet failure a handful of packets can exhaust even six
        # retries, but the vast majority must get through.
        assert metrics.packets_dropped < 0.02 * metrics.packets_delivered
        # CRC escapes are ~2^-16 of failures: essentially everything
        # delivered is clean.
        assert metrics.delivered_packet_error_rate < 1e-3

    def test_exhausted_retries_drop_packets(self):
        metrics = self._noisy_simulator(max_retries=0).run(self._noisy_traffic()).metrics()
        assert metrics.packets_dropped > 0
        assert metrics.packets_delivered + metrics.packets_dropped == metrics.packets_sent

    def test_retransmissions_occupy_the_channel(self):
        with_arq = self._noisy_simulator(max_retries=6).run(self._noisy_traffic()).metrics()
        without = (
            NetworkSimulator(
                manager=OpticalLinkManager(codes=[HammingCode(3)]),
                crc=None,
                max_retries=0,
                packet_bits=64,
                seed=31,
            )
            .run(self._noisy_traffic())
            .metrics()
        )
        assert with_arq.packets_sent > without.packets_sent
        assert with_arq.total_energy_j > without.total_energy_j


class TestEngineBehaviour:
    def test_same_seed_reproduces_the_run_exactly(self):
        def run():
            traffic = UniformTrafficGenerator(
                12, mean_request_rate_hz=5e8, payload_bits=4096, seed=1
            )
            return (
                NetworkSimulator(seed=2).run(traffic.generate(300)).metrics().as_dict()
            )

        assert run() == run()

    def test_contending_transfers_queue_on_the_reader_channel(self):
        requests = [
            TrafficRequest(0.0, 1, 0, 8192, 1e-9),
            TrafficRequest(0.0, 2, 0, 8192, 1e-9),
        ]
        result = NetworkSimulator(crc=None, max_retries=0, seed=9).run(requests)
        first, second = sorted(result.records, key=lambda r: r.first_start_time_s)
        assert second.first_start_time_s >= first.completion_time_s

    def test_independent_readers_do_not_contend(self):
        requests = [
            TrafficRequest(0.0, 1, 0, 8192, 1e-9),
            TrafficRequest(0.0, 2, 3, 8192, 1e-9),
        ]
        result = NetworkSimulator(crc=None, max_retries=0, seed=9).run(requests)
        for record in result.records:
            assert record.first_start_time_s == pytest.approx(0.0, abs=1e-7)

    def test_infeasible_policy_rejects_requests(self):
        # No scheme has CT <= 0.5, so the manager cannot configure anything.
        simulator = NetworkSimulator(
            policy=DeadlineConstrainedPolicy(max_communication_time=0.5),
            crc=None,
            max_retries=0,
            seed=13,
        )
        result = simulator.run(_single_stream_requests(5))
        assert all(record.rejected for record in result.records)
        metrics = result.metrics()
        assert metrics.transfers_rejected == 5
        assert metrics.transfers_completed == 0

    def test_policy_changes_the_selected_configuration(self):
        energy = NetworkSimulator(
            policy=MinimumEnergyPolicy(), crc=None, max_retries=0, seed=1
        ).run(_single_stream_requests(3))
        power = NetworkSimulator(crc=None, max_retries=0, seed=1).run(
            _single_stream_requests(3)
        )
        # min-energy favours the low-CT H(71,64); min-power may differ, but
        # both must pick a paper code and record it.
        assert {record.code_name for record in energy.records} <= {
            "w/o ECC",
            "H(71,64)",
            "H(7,4)",
        }
        assert {record.code_name for record in power.records} <= {
            "w/o ECC",
            "H(71,64)",
            "H(7,4)",
        }

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            NetworkSimulator(mode="psychic")
        with pytest.raises(ConfigurationError):
            NetworkSimulator(packet_bits=0)
        with pytest.raises(ConfigurationError):
            NetworkSimulator(max_retries=-1)
        with pytest.raises(ConfigurationError):
            NetworkSimulator(warmup_fraction=1.0)
        with pytest.raises(ConfigurationError):
            NetworkSimulator(seed=1).run([])


class _ExplodingController(AdaptiveEccController):
    """Telemetry consumer that dies after a set number of observations."""

    def __init__(self, *, explode_after: int = 0):
        super().__init__(margins=[1.0, 2.0], mode="adaptive")
        self._observations_left = explode_after

    def observe(self, channel, now_s, **kwargs):
        if self._observations_left <= 0:
            raise RuntimeError("telemetry pipeline exploded")
        self._observations_left -= 1
        return super().observe(channel, now_s, **kwargs)


class TestMidDrainErrorContext:
    """A crash deep inside a handler must name the event that broke the run."""

    def test_controller_crash_surfaces_with_event_context(self):
        simulator = NetworkSimulator(controller=_ExplodingController(), seed=3)
        with pytest.raises(SimulationError) as excinfo:
            simulator.run(_single_stream_requests(3))
        message = str(excinfo.value)
        # The wrapper pins down what broke and when: event kind, simulated
        # time, and the position in the event stream.
        assert "DEPARTURE handler failed at t=" in message
        assert "(event #" in message
        assert "telemetry pipeline exploded" in message
        assert isinstance(excinfo.value.__cause__, RuntimeError)

    def test_simulation_errors_are_not_double_wrapped(self):
        class _DomainErrorController(_ExplodingController):
            def observe(self, channel, now_s, **kwargs):
                raise SimulationError("domain-level failure")

        simulator = NetworkSimulator(controller=_DomainErrorController(), seed=3)
        with pytest.raises(SimulationError) as excinfo:
            simulator.run(_single_stream_requests(1))
        assert str(excinfo.value) == "domain-level failure"

    def test_crashed_run_does_not_poison_a_fresh_simulator(self):
        # Determinism after a failure: the same seed on a new engine must
        # reproduce the healthy run exactly, even though a sibling engine
        # just died mid-drain against the same traffic.
        requests = _single_stream_requests(5)
        baseline = NetworkSimulator(seed=11).run(requests).metrics().as_dict()
        with pytest.raises(SimulationError):
            NetworkSimulator(controller=_ExplodingController(explode_after=2), seed=11).run(
                requests
            )
        again = NetworkSimulator(seed=11).run(requests).metrics().as_dict()
        assert again == baseline
