"""Monte-Carlo estimation of post-decoding bit error rates.

The analytic expressions in :mod:`repro.coding.theory` are approximations;
this module provides the empirical counterpart used by the validation
examples and the property-based tests: push random messages through
encode → binary-symmetric channel → decode and count residual bit errors.

The engine is batched *and packed*: messages are drawn, packed into
``uint64`` words, encoded, corrupted and decoded ``batch_size`` blocks at a
time through the packed coding API
(:meth:`~repro.coding.base.LinearBlockCode.encode_batch_packed` /
:meth:`~repro.coding.base.LinearBlockCode.decode_batch_packed`), and
residual message-bit errors are counted with packed popcounts — the random
stream is consumed exactly like the unpacked pipeline, so results are
bit-identical, just without ever shuttling one-byte-per-bit matrices
between the stages.  Codes without the packed API (duck-typed schemes that
predate it, or non-systematic codes) still run through the unpacked
:func:`~repro.coding.base.encode_blocks` / :func:`~repro.coding.base.decode_blocks`
fallback.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

import numpy as np

from ..exceptions import ConfigurationError
from .base import decode_blocks, decode_blocks_packed, encode_blocks, encode_blocks_packed
from .packed import pack_bits, popcount_rows, prefix_mask

__all__ = [
    "MonteCarloBERResult",
    "estimate_ber_monte_carlo",
    "DEFAULT_BATCH_SIZE",
    "shard_seed_sequences",
    "resolve_rng",
]

#: Default number of blocks simulated per vectorized batch.  Large enough to
#: amortise the per-batch Python overhead, small enough that the working set
#: (a few (B, n) uint8/float matrices) stays cache- and memory-friendly.
DEFAULT_BATCH_SIZE = 8192


def shard_seed_sequences(seed: int, num_shards: int) -> list[np.random.SeedSequence]:
    """Deterministic per-shard seed sequences for a sharded Monte-Carlo sweep.

    Returns the ``num_shards`` children that ``np.random.SeedSequence(seed)``
    would produce with :meth:`~numpy.random.SeedSequence.spawn`, constructed
    directly from their spawn keys.  Because child ``i`` depends only on
    ``(seed, i)`` — never on which process asks, in what order, or how many
    siblings were spawned before it — every shard of a sweep can rebuild its
    own generator independently, which is what makes the parallel experiment
    orchestrator byte-identical to a serial run.
    """
    if num_shards < 0:
        raise ConfigurationError("number of shards cannot be negative")
    return [np.random.SeedSequence(seed, spawn_key=(index,)) for index in range(num_shards)]


def resolve_rng(
    rng: np.random.Generator | None = None,
    seed: int | np.random.SeedSequence | None = None,
) -> np.random.Generator:
    """Build the generator for a simulation from either a ``rng`` or a ``seed``.

    Exactly one of ``rng``/``seed`` may be given; with neither, a fresh
    OS-entropy generator is returned.  Shared by the Monte-Carlo engine, the
    link simulator and the sweep orchestrator so every entry point accepts
    the same seeding vocabulary.
    """
    if rng is not None and seed is not None:
        raise ConfigurationError("pass either rng or seed, not both")
    if rng is not None:
        return rng
    if seed is not None:
        return np.random.default_rng(seed)
    return np.random.default_rng()


@dataclass(frozen=True)
class MonteCarloBERResult:
    """Outcome of a Monte-Carlo BER estimation run."""

    code_name: str
    raw_ber: float
    estimated_ber: float
    bits_simulated: int
    bit_errors: int
    blocks_simulated: int
    block_errors: int

    @property
    def block_error_rate(self) -> float:
        """Fraction of blocks with at least one residual error."""
        if self.blocks_simulated == 0:
            return 0.0
        return self.block_errors / self.blocks_simulated

    def confidence_interval(self, z: float = 1.96) -> tuple[float, float]:
        """Normal-approximation confidence interval on the estimated BER."""
        if self.bits_simulated == 0:
            return (0.0, 0.0)
        p = self.estimated_ber
        half_width = z * math.sqrt(max(p * (1.0 - p), 1e-300) / self.bits_simulated)
        return (max(0.0, p - half_width), min(1.0, p + half_width))


def estimate_ber_monte_carlo(
    code,
    raw_ber: float,
    *,
    num_blocks: int = 2000,
    rng: np.random.Generator | None = None,
    seed: int | np.random.SeedSequence | None = None,
    batch_size: int = DEFAULT_BATCH_SIZE,
) -> MonteCarloBERResult:
    """Estimate the post-decoding BER of ``code`` on a BSC.

    Parameters
    ----------
    code:
        Any object following the coding API (``n``, ``k``, batch or scalar
        encode/decode), including :class:`~repro.coding.uncoded.UncodedScheme`.
    raw_ber:
        Crossover probability of the binary symmetric channel.
    num_blocks:
        Number of independent codewords to simulate.
    rng:
        Optional numpy random generator for reproducibility.
    seed:
        Alternative to ``rng``: an integer or :class:`~numpy.random.SeedSequence`
        from which the generator is built (see :func:`resolve_rng`).
    batch_size:
        Number of blocks simulated per vectorized batch; the default keeps
        the per-batch arrays comfortably in memory while leaving the hot
        path entirely inside NumPy.
    """
    if not 0.0 <= raw_ber <= 1.0:
        raise ConfigurationError("raw BER must lie in [0, 1]")
    if num_blocks < 1:
        raise ConfigurationError("at least one block must be simulated")
    if batch_size < 1:
        raise ConfigurationError("batch size must be at least 1")
    generator = resolve_rng(rng, seed)

    bit_errors = 0
    block_errors = 0
    k = code.k
    n = code.n
    # The packed fast path counts residual errors on the systematic message
    # prefix of the corrected codewords, which is only valid for codes that
    # expose the packed API (all in-package codes; they are systematic by
    # construction).  Duck-typed codes keep the unpacked message comparison.
    packed_path = (
        getattr(code, "encode_batch_packed", None) is not None
        and getattr(code, "decode_batch_packed", None) is not None
    )
    message_mask = prefix_mask(n, k) if packed_path else None
    for start in range(0, num_blocks, batch_size):
        count = min(batch_size, num_blocks - start)
        messages = generator.integers(0, 2, size=(count, k), dtype=np.uint8)
        if packed_path:
            codeword_words = encode_blocks_packed(code, pack_bits(messages))
            flip_words = pack_bits(generator.random((count, n)) < raw_ber)
            decoded = decode_blocks_packed(code, codeword_words ^ flip_words)
            errors_per_block = popcount_rows(
                (decoded.corrected_words ^ codeword_words) & message_mask
            )
        else:
            codewords = encode_blocks(code, messages)
            flips = (generator.random((count, n)) < raw_ber).astype(np.uint8)
            decoded_bits = decode_blocks(code, codewords ^ flips).message_bits
            errors_per_block = np.count_nonzero(decoded_bits != messages, axis=1)
        bit_errors += int(errors_per_block.sum())
        block_errors += int(np.count_nonzero(errors_per_block))
    bits = num_blocks * k
    return MonteCarloBERResult(
        code_name=getattr(code, "name", type(code).__name__),
        raw_ber=float(raw_ber),
        estimated_ber=bit_errors / bits,
        bits_simulated=bits,
        bit_errors=bit_errors,
        blocks_simulated=num_blocks,
        block_errors=block_errors,
    )
