"""Monte-Carlo validation of the analytic BER chain (batched engine).

The paper's evaluation rests on three analytic relations: the OOK error
probability (Eq. 3), the post-decoding Hamming BER (Eq. 2) and the link SNR
(Eq. 4).  This experiment closes the loop empirically for every scheme of
the paper's code set: it designs operating points at Monte-Carlo-friendly
BER targets, simulates the physical link bit by bit through the batched
:class:`~repro.simulation.linksim.OpticalLinkSimulator`, and compares the
measured raw and post-decoding error rates with the analytic predictions.

Before the array-at-a-time coding engine this validation was too slow to
run as a routine experiment; with batching it simulates hundreds of
thousands of codewords per second, so it is registered alongside the
figure experiments in :mod:`repro.experiments.runner` as ``validation``.
"""

from __future__ import annotations

from dataclasses import asdict, dataclass
from typing import List, Sequence

import numpy as np

from ..coding.registry import paper_code_by_name, paper_code_set
from ..coding.theory import output_ber
from ..config import DEFAULT_CONFIG, PaperConfig
from ..exceptions import ConfigurationError
from ..link.design import OpticalLinkDesigner
from ..simulation.linksim import OpticalLinkSimulator

__all__ = [
    "ValidationPoint",
    "ValidationResult",
    "run_validation",
    "sweep_shards",
    "run_sweep_shard",
    "merge_sweep",
]

#: Defaults of the sweep; shared by :func:`run_validation` and the grid API.
DEFAULT_TARGETS: tuple[float, ...] = (1e-3, 1e-4)
DEFAULT_NUM_BLOCKS = 20000
DEFAULT_SEED = 2024


@dataclass(frozen=True)
class ValidationPoint:
    """Analytic-vs-measured error rates of one (code, target BER) link."""

    code_name: str
    target_ber: float
    analytic_raw_ber: float
    measured_raw_ber: float
    analytic_post_ber: float
    measured_post_ber: float
    blocks_simulated: int

    @property
    def raw_ber_relative_error(self) -> float:
        """Relative deviation of the measured raw BER from Eq. 3."""
        return self.measured_raw_ber / self.analytic_raw_ber - 1.0

    def as_dict(self) -> dict:
        """Flat dict for CSV export."""
        return {
            "code": self.code_name,
            "target_ber": self.target_ber,
            "analytic_raw_ber": self.analytic_raw_ber,
            "measured_raw_ber": self.measured_raw_ber,
            "analytic_post_ber": self.analytic_post_ber,
            "measured_post_ber": self.measured_post_ber,
            "blocks": self.blocks_simulated,
        }


@dataclass
class ValidationResult:
    """Monte-Carlo validation sweep over the paper's code set."""

    points: List[ValidationPoint]
    num_blocks: int

    def point_for(self, code_name: str, target_ber: float) -> ValidationPoint:
        """Look up the validation point of one (code, target) pair."""
        for point in self.points:
            if point.code_name == code_name and point.target_ber == target_ber:
                return point
        raise KeyError(f"no validation point for {code_name!r} at {target_ber:g}")

    def to_rows(self) -> List[dict]:
        """CSV rows for the experiment runner."""
        return [point.as_dict() for point in self.points]

    def render_text(self) -> str:
        """Human-readable validation table."""
        header = (
            f"{'code':<12} {'target':>9} {'raw (Eq.3)':>12} {'raw (sim)':>12} "
            f"{'post (Eq.2)':>12} {'post (sim)':>12}"
        )
        lines = [
            "Monte-Carlo validation of the analytic BER chain "
            f"({self.num_blocks} blocks per point, batched engine)",
            header,
            "-" * len(header),
        ]
        for point in self.points:
            lines.append(
                f"{point.code_name:<12} {point.target_ber:9.0e} "
                f"{point.analytic_raw_ber:12.3e} {point.measured_raw_ber:12.3e} "
                f"{point.analytic_post_ber:12.3e} {point.measured_post_ber:12.3e}"
            )
        lines.append(
            "The simulated raw BER tracks Eq. 3 and the simulated post-decoding "
            "BER tracks Eq. 2 within Monte-Carlo noise."
        )
        return "\n".join(lines)


def _validation_point(
    code,
    target_ber: float,
    *,
    config: PaperConfig,
    num_blocks: int,
    batch_size: int,
    seed: int,
    spawn_index: int,
) -> ValidationPoint:
    """Design, simulate and measure one (code, target BER) link.

    The generator is spawned from ``SeedSequence(seed, spawn_key=(spawn_index,))``,
    so the point's Monte-Carlo outcome depends only on ``(seed, spawn_index)``
    — never on which other points ran before it or in which process — which
    is what lets the parallel orchestrator reproduce the serial report
    byte for byte.
    """
    designer = OpticalLinkDesigner(config=config)
    design = designer.design_point(code, target_ber)
    rng = np.random.default_rng(np.random.SeedSequence(seed, spawn_key=(spawn_index,)))
    simulator = OpticalLinkSimulator(code, design, config=config, rng=rng)
    result = simulator.run(num_blocks, batch_size=batch_size)
    return ValidationPoint(
        code_name=code.name,
        target_ber=float(target_ber),
        analytic_raw_ber=design.raw_channel_ber,
        measured_raw_ber=result.measured_raw_ber,
        analytic_post_ber=float(output_ber(code, design.raw_channel_ber)),
        measured_post_ber=result.measured_post_decoding_ber,
        blocks_simulated=result.blocks_simulated,
    )


def run_validation(
    config: PaperConfig = DEFAULT_CONFIG,
    *,
    targets: Sequence[float] = DEFAULT_TARGETS,
    num_blocks: int = DEFAULT_NUM_BLOCKS,
    batch_size: int = 8192,
    seed: int = DEFAULT_SEED,
) -> ValidationResult:
    """Validate the analytic chain at Monte-Carlo-friendly BER targets.

    Parameters
    ----------
    config:
        Evaluation parameters; defaults to the paper's Section V setup.
    targets:
        Target post-decoding BERs to design links for.  Kept moderate so a
        Monte-Carlo run observes errors in reasonable time.
    num_blocks:
        Codewords simulated per (code, target) point.
    batch_size:
        Blocks per vectorized simulation batch.
    seed:
        Root seed.  Each (code, target) point runs on its own child
        generator spawned from it, so the report is reproducible and
        independent of sweep order or parallelism.
    """
    if num_blocks < 1:
        raise ConfigurationError("at least one block must be simulated")
    points: List[ValidationPoint] = []
    spawn_index = 0
    for target_ber in targets:
        for code in paper_code_set(config.ip_bus_width_bits):
            points.append(
                _validation_point(
                    code,
                    target_ber,
                    config=config,
                    num_blocks=num_blocks,
                    batch_size=batch_size,
                    seed=seed,
                    spawn_index=spawn_index,
                )
            )
            spawn_index += 1
    return ValidationResult(points=points, num_blocks=num_blocks)


# ------------------------------------------------------------------ grid API
def sweep_shards(config: PaperConfig = DEFAULT_CONFIG, options: dict | None = None) -> list[dict]:
    """Grid descriptor: one shard per (target BER, code) Monte-Carlo point.

    ``options`` may override ``targets``, ``num_blocks``, ``batch_size`` and
    ``seed`` (all JSON-serializable); shards carry everything a worker needs.
    """
    options = options or {}
    targets = options.get("targets", DEFAULT_TARGETS)
    code_names = options.get(
        "codes", [code.name for code in paper_code_set(config.ip_bus_width_bits)]
    )
    shards = []
    spawn_index = 0
    for target_ber in targets:
        for name in code_names:
            shards.append(
                {
                    "code": name,
                    "target_ber": float(target_ber),
                    "num_blocks": int(options.get("num_blocks", DEFAULT_NUM_BLOCKS)),
                    "batch_size": int(options.get("batch_size", 8192)),
                    "seed": int(options.get("seed", DEFAULT_SEED)),
                    "spawn_index": spawn_index,
                }
            )
            spawn_index += 1
    return shards


def run_sweep_shard(params: dict, config: PaperConfig = DEFAULT_CONFIG) -> dict:
    """Worker: simulate one (code, target) point; returns a JSON payload."""
    point = _validation_point(
        paper_code_by_name(params["code"], config.ip_bus_width_bits),
        params["target_ber"],
        config=config,
        num_blocks=params["num_blocks"],
        batch_size=params["batch_size"],
        seed=params["seed"],
        spawn_index=params["spawn_index"],
    )
    return asdict(point)


def merge_sweep(
    payloads: Sequence[dict],
    config: PaperConfig = DEFAULT_CONFIG,
    options: dict | None = None,
) -> tuple[str, list[dict]]:
    """Assemble shard payloads into the (text report, CSV rows) pair."""
    options = options or {}
    result = ValidationResult(
        points=[ValidationPoint(**payload) for payload in payloads],
        num_blocks=int(options.get("num_blocks", DEFAULT_NUM_BLOCKS)),
    )
    return result.render_text(), result.to_rows()
