"""Block interleaving to spread burst errors across codewords.

Hamming codes correct one error per block, so a burst of adjacent errors on
the serial optical stream can defeat them.  A block interleaver writes bits
row-wise into a depth x width matrix and reads them column-wise, so a burst
of up to ``depth`` channel bits lands in distinct codewords.  This is the
standard companion of single-error-correcting codes and is exercised by the
burst fault-injection experiments.
"""

from __future__ import annotations

import numpy as np

from ..exceptions import CodewordLengthError, ConfigurationError
from .matrices import as_gf2

__all__ = ["BlockInterleaver"]


class BlockInterleaver:
    """Row-in / column-out block interleaver.

    Parameters
    ----------
    depth:
        Number of rows; a burst of up to ``depth`` consecutive channel bits
        touches each codeword at most once.
    width:
        Number of columns; usually the codeword length ``n``.
    """

    def __init__(self, depth: int, width: int):
        if depth < 1 or width < 1:
            raise ConfigurationError("interleaver depth and width must be positive")
        self._depth = depth
        self._width = width

    @property
    def depth(self) -> int:
        """Number of interleaved codewords."""
        return self._depth

    @property
    def width(self) -> int:
        """Bits per codeword (matrix row length)."""
        return self._width

    @property
    def block_size(self) -> int:
        """Number of bits processed per interleaving operation."""
        return self._depth * self._width

    def interleave(self, bits) -> np.ndarray:
        """Permute a block of ``depth * width`` bits row-in, column-out."""
        stream = as_gf2(bits).ravel()
        if stream.size != self.block_size:
            raise CodewordLengthError(
                f"interleaver expects {self.block_size} bits, got {stream.size}"
            )
        return stream.reshape(self._depth, self._width).T.reshape(-1).copy()

    def deinterleave(self, bits) -> np.ndarray:
        """Inverse permutation of :meth:`interleave`."""
        stream = as_gf2(bits).ravel()
        if stream.size != self.block_size:
            raise CodewordLengthError(
                f"deinterleaver expects {self.block_size} bits, got {stream.size}"
            )
        return stream.reshape(self._width, self._depth).T.reshape(-1).copy()
