"""Service benchmark: sustained query throughput and mid-bench fault survival.

Two legs, both against a real in-process
:class:`~repro.service.server.SimulationService` on an ephemeral port:

* ``cached_design_queries`` — sustained ``GET /design`` rate over a
  keep-alive connection once the operating point is cached.  This is the
  service's hot path (the solve itself costs milliseconds but is memoized
  after the first request).  **Gated** at an absolute floor of 100 req/s —
  three orders of magnitude of headroom on a dev container, so the gate
  only catches structural regressions (a lost cache tier, an accidental
  solve per request, a per-request fork), never runner noise.
* ``job_survives_worker_kill`` — a sweep job is submitted, its forked
  worker is SIGKILLed mid-flight while design queries keep hammering the
  API, and the job must still complete with a result byte-identical to an
  uninterrupted serial run (checkpoint salvage + position-keyed shard
  seeds).  The artefact records the recovery time and the query throughput
  sustained *during* the recovery.

Run either way::

    PYTHONPATH=src python benchmarks/bench_service.py
    pytest benchmarks/bench_service.py -q
"""

from __future__ import annotations

import http.client
import json
import multiprocessing
import os
import signal
import sys
import tempfile
import time

_SRC = os.path.join(os.path.dirname(os.path.dirname(os.path.abspath(__file__))), "src")
if _SRC not in sys.path:
    sys.path.insert(0, _SRC)
_HERE = os.path.dirname(os.path.abspath(__file__))
if _HERE not in sys.path:
    sys.path.insert(0, _HERE)

import pytest  # noqa: E402

import benchlib  # noqa: E402
from repro.experiments.orchestrator import (  # noqa: E402
    GridFunctions,
    register_experiment,
    run_experiment,
)
from repro.service import ServiceConfig, SimulationService  # noqa: E402
from repro.service.models import JobState  # noqa: E402

NUM_QUERY_REQUESTS = 2000
QUERY_RATE_GATE_PER_SEC = 100.0
KILL_LEG_SHARDS = 6
_JSON_PATH = os.path.join(_HERE, "BENCH_service.json")

_HAVE_FORK = "fork" in multiprocessing.get_all_start_methods()

EXPERIMENT = "benchsvc"


def _shards(config, options):
    options = options or {}
    return [
        {"index": index, "sleep_s": float(options.get("sleep_s", 0.0))}
        for index in range(int(options.get("num_shards", KILL_LEG_SHARDS)))
    ]


def _run_shard(params, config):
    if params["sleep_s"]:
        time.sleep(params["sleep_s"])
    return {"index": params["index"], "value": params["index"] * 13 + 7}


def _merge(payloads, config, options):
    rows = [dict(payload) for payload in payloads]
    return "sum: " + str(sum(row["value"] for row in rows)), rows


register_experiment(EXPERIMENT, GridFunctions(_shards, _run_shard, _merge), replace=True)


class _Client:
    """Keep-alive JSON client (one TCP connection, like a real consumer)."""

    def __init__(self, host: str, port: int):
        self.connection = http.client.HTTPConnection(host, port, timeout=30)

    def request(self, method: str, path: str, body=None):
        payload = json.dumps(body).encode("utf-8") if body is not None else None
        headers = {"Content-Type": "application/json"} if payload else {}
        self.connection.request(method, path, body=payload, headers=headers)
        response = self.connection.getresponse()
        return response.status, json.loads(response.read().decode("utf-8"))

    def close(self) -> None:
        self.connection.close()


def _time_queries(client: _Client, path: str, count: int) -> dict:
    start = time.perf_counter()
    for _ in range(count):
        status, _payload = client.request("GET", path)
        assert status == 200, status
    seconds = time.perf_counter() - start
    return {
        "requests": count,
        "seconds": seconds,
        "req_per_sec": count / seconds,
    }


def _query_leg(service: SimulationService, num_requests: int) -> dict:
    client = _Client(service.host, service.port)
    try:
        design = "/design?code=secded(72,64)&target_ber=1e-12"
        status, first = client.request("GET", design)
        assert status == 200 and first["cached"] is False
        status, second = client.request("GET", design)
        assert second["cached"] is True
        results = _time_queries(client, design, num_requests)
        results["healthz"] = _time_queries(client, "/healthz", num_requests // 4)
        return results
    finally:
        client.close()


def _kill_leg(service: SimulationService, expected_text: str) -> dict:
    """Submit a slow job, SIGKILL its worker, keep querying, await recovery."""
    client = _Client(service.host, service.port)
    try:
        status, submitted = client.request(
            "POST",
            "/jobs",
            {"experiment": EXPERIMENT, "options": {"sleep_s": 0.15}},
        )
        assert status == 202, submitted
        job_id = submitted["job_id"]

        deadline = time.monotonic() + 30.0
        pid = None
        while pid is None and time.monotonic() < deadline:
            pid = service.supervisor.active_worker_pid()
            time.sleep(0.005)
        assert pid is not None, "job worker never started"
        os.kill(pid, signal.SIGKILL)
        killed_at = time.perf_counter()

        # the API stays responsive while the supervisor recovers the job
        queries_during_recovery = 0
        design = "/design?code=secded(72,64)&target_ber=1e-12"
        deadline = time.monotonic() + 120.0
        while time.monotonic() < deadline:
            status, job = client.request("GET", f"/jobs/{job_id}")
            assert status == 200
            # "failed" is transient (the supervisor immediately re-queues or
            # kills); only done/dead are terminal
            if job["state"] in (JobState.DONE, JobState.DEAD):
                break
            status, _payload = client.request("GET", design)
            assert status == 200
            queries_during_recovery += 1
        recovery_s = time.perf_counter() - killed_at
        assert job["state"] == JobState.DONE, job

        status, result = client.request("GET", f"/jobs/{job_id}/result")
        assert status == 200
        assert result["result"]["text"] == expected_text
        return {
            "worker_killed": True,
            "attempts_charged": job["attempts"],
            "recovery_s": recovery_s,
            "queries_during_recovery": queries_during_recovery,
            "result_byte_identical": result["result"]["text"] == expected_text,
        }
    finally:
        client.close()


def run_benchmark(
    num_requests: int = NUM_QUERY_REQUESTS, *, include_kill_leg: bool = True
) -> dict:
    results: dict = {
        "num_requests": num_requests,
        "query_rate_gate_per_sec": QUERY_RATE_GATE_PER_SEC,
    }
    expected_text, _rows = run_experiment(EXPERIMENT, options={"sleep_s": 0.15})
    with tempfile.TemporaryDirectory(prefix="bench-service-") as data_dir:
        service = SimulationService(
            data_dir=data_dir,
            supervise=_HAVE_FORK,
            service_config=ServiceConfig(backoff_base_s=0.05, backoff_cap_s=0.2),
        )
        service.start()
        try:
            results["cached_design_queries"] = _query_leg(service, num_requests)
            results["gate_met"] = (
                results["cached_design_queries"]["req_per_sec"]
                >= QUERY_RATE_GATE_PER_SEC
            )
            if include_kill_leg and _HAVE_FORK:
                results["job_survives_worker_kill"] = _kill_leg(
                    service, expected_text
                )
        finally:
            service.stop(drain_timeout_s=10.0)
    return results


def test_cached_design_queries_meet_rate_floor():
    """Acceptance gate: >= 100 cached-query req/s through the full HTTP stack."""
    results = run_benchmark(num_requests=400, include_kill_leg=False)
    rate = results["cached_design_queries"]["req_per_sec"]
    assert rate >= QUERY_RATE_GATE_PER_SEC, results


@pytest.mark.skipif(not _HAVE_FORK, reason="service workers require fork")
def test_job_survives_mid_bench_worker_kill():
    """Chaos gate: a SIGKILLed worker costs one retry, never the result."""
    results = run_benchmark(num_requests=200, include_kill_leg=True)
    leg = results["job_survives_worker_kill"]
    assert leg["result_byte_identical"]
    assert leg["attempts_charged"] >= 1
    # the API kept answering while the job recovered
    assert leg["queries_during_recovery"] > 0


def main(argv: "list[str] | None" = None) -> int:
    args = benchlib.parse_args(argv, description=__doc__)
    results = run_benchmark()
    benchlib.write_bench_json(_JSON_PATH, "service", results)
    if args.history:
        headline = {
            "cached_design_req_per_sec": results["cached_design_queries"][
                "req_per_sec"
            ],
            "healthz_req_per_sec": results["cached_design_queries"]["healthz"][
                "req_per_sec"
            ],
        }
        kill = results.get("job_survives_worker_kill")
        if kill is not None:
            headline["kill_recovery_s"] = kill["recovery_s"]
        benchlib.append_history(args.history, "service", headline)
    print(json.dumps(results, indent=2))
    if not results["gate_met"]:
        print("FAIL: cached design query rate below the floor", file=sys.stderr)
        return 1
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
