"""28 nm FDSOI block characterisation library (paper Table I).

The paper synthesised the transmitter and receiver interfaces on a 28 nm
FDSOI technology for a 64-bit IP bus at FIP = 1 GHz and a modulation rate of
10 Gb/s, and reports per-block area, critical path and power in Table I.
Since we cannot re-run a commercial synthesis flow, those numbers are
captured here as a *technology library*: the experiments read the blocks
they need from the library, and the parametric models of
:mod:`repro.interfaces.blocks` are calibrated against these entries so other
code sizes and bus widths can be explored.

Power conventions follow the paper: static power in nanowatts, dynamic power
in microwatts, area in square micrometres and critical path in picoseconds.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterable

from ..exceptions import ConfigurationError

__all__ = ["BlockCharacterisation", "TechnologyLibrary", "FDSOI_28NM"]


@dataclass(frozen=True)
class BlockCharacterisation:
    """Synthesis characterisation of one hardware block."""

    name: str
    area_um2: float
    critical_path_ps: float
    static_power_nw: float
    dynamic_power_uw: float

    def __post_init__(self) -> None:
        if self.area_um2 < 0 or self.critical_path_ps < 0:
            raise ConfigurationError("area and critical path cannot be negative")
        if self.static_power_nw < 0 or self.dynamic_power_uw < 0:
            raise ConfigurationError("powers cannot be negative")

    @property
    def total_power_uw(self) -> float:
        """Total power in microwatts (static is quoted in nanowatts)."""
        return self.dynamic_power_uw + self.static_power_nw * 1e-3

    @property
    def total_power_w(self) -> float:
        """Total power in watts."""
        return self.total_power_uw * 1e-6

    def scaled(self, factor: float, *, name: str | None = None) -> "BlockCharacterisation":
        """Return a copy with area and powers scaled (critical path unchanged)."""
        if factor < 0:
            raise ConfigurationError("scale factor cannot be negative")
        return BlockCharacterisation(
            name=name if name is not None else self.name,
            area_um2=self.area_um2 * factor,
            critical_path_ps=self.critical_path_ps,
            static_power_nw=self.static_power_nw * factor,
            dynamic_power_uw=self.dynamic_power_uw * factor,
        )


class TechnologyLibrary:
    """A named collection of block characterisations plus calibration constants.

    The calibration constants are per-element figures derived from the
    Table I entries (flip-flop area, XOR-gate area, per-bit serialiser cost,
    dynamic power densities); :mod:`repro.interfaces.blocks` uses them to
    estimate blocks that are not in the library.
    """

    def __init__(
        self,
        name: str,
        *,
        feature_size_nm: float,
        supply_voltage_v: float,
        blocks: Iterable[BlockCharacterisation],
        calibration: Dict[str, float],
    ):
        self._name = name
        self._feature_size_nm = feature_size_nm
        self._supply_voltage_v = supply_voltage_v
        self._blocks: Dict[str, BlockCharacterisation] = {}
        for block in blocks:
            if block.name in self._blocks:
                raise ConfigurationError(f"duplicate block {block.name!r} in library")
            self._blocks[block.name] = block
        self._calibration = dict(calibration)

    @property
    def name(self) -> str:
        """Library name (e.g. ``"28nm FDSOI"``)."""
        return self._name

    @property
    def feature_size_nm(self) -> float:
        """Technology feature size in nanometres."""
        return self._feature_size_nm

    @property
    def supply_voltage_v(self) -> float:
        """Nominal supply voltage."""
        return self._supply_voltage_v

    def block_names(self) -> list[str]:
        """Sorted names of all characterised blocks."""
        return sorted(self._blocks)

    def has_block(self, name: str) -> bool:
        """True when a block with this exact name is characterised."""
        return name in self._blocks

    def block(self, name: str) -> BlockCharacterisation:
        """Look up a characterised block by exact name."""
        if name not in self._blocks:
            raise ConfigurationError(
                f"block {name!r} is not characterised in {self._name}; "
                f"known blocks: {self.block_names()}"
            )
        return self._blocks[name]

    def calibration(self, key: str) -> float:
        """Look up a calibration constant (e.g. ``"xor2_area_um2"``)."""
        if key not in self._calibration:
            raise ConfigurationError(
                f"unknown calibration constant {key!r}; known: {sorted(self._calibration)}"
            )
        return self._calibration[key]

    def calibration_keys(self) -> list[str]:
        """Sorted names of the calibration constants."""
        return sorted(self._calibration)


# --------------------------------------------------------------------------------
# Table I of the paper, verbatim.  Block names encode side and mode so the
# interface assemblies can fetch exactly what the paper lists.
# --------------------------------------------------------------------------------
_TABLE_I_BLOCKS = [
    # Transmitter side.
    BlockCharacterisation("tx/mux_1bit_3to1", 14.0, 80.0, 0.2, 0.23),
    BlockCharacterisation("tx/h74_coders_x16", 551.0, 210.0, 1.7, 3.13),
    BlockCharacterisation("tx/h71_64_coder", 490.0, 350.0, 1.6, 2.51),
    BlockCharacterisation("tx/ser_112bit_h74", 433.0, 70.0, 6.5, 6.21),
    BlockCharacterisation("tx/ser_71bit_h71_64", 276.0, 70.0, 4.1, 3.24),
    BlockCharacterisation("tx/ser_64bit_uncoded", 249.0, 70.0, 3.6, 2.93),
    # Receiver side.
    BlockCharacterisation("rx/mux_64bit_3to1", 815.0, 80.0, 10.8, 1.55),
    BlockCharacterisation("rx/h74_decoders_x16", 783.0, 300.0, 2.5, 3.80),
    BlockCharacterisation("rx/h71_64_decoder", 648.0, 570.0, 2.2, 2.63),
    BlockCharacterisation("rx/deser_112bit_h74", 365.0, 60.0, 5.5, 4.75),
    BlockCharacterisation("rx/deser_71bit_h71_64", 231.0, 60.0, 3.5, 3.02),
    BlockCharacterisation("rx/deser_64bit_uncoded", 208.0, 60.0, 3.0, 2.75),
]

# Per-element constants fitted on the Table I entries (see the derivation in
# tests/interfaces/test_blocks.py): a 28 nm flip-flop occupies ~3.5 um^2, a
# 2-input XOR ~1.1 um^2, the serialiser costs ~3.9 um^2 and ~0.05 uW per bit
# at 10 Gb/s, the deserialiser ~3.3 um^2 and ~0.043 uW per bit.
_CALIBRATION = {
    "flipflop_area_um2": 3.48,
    "xor2_area_um2": 1.12,
    "decode_correct_area_um2_per_bit": 2.07,
    "serializer_area_um2_per_bit": 3.89,
    "deserializer_area_um2_per_bit": 3.25,
    "serializer_dynamic_uw_per_bit_at_10g": 0.050,
    "deserializer_dynamic_uw_per_bit_at_10g": 0.0425,
    "codec_dynamic_power_density_uw_per_um2_at_1ghz": 0.0052,
    "mux_area_um2_per_bit": 12.7,
    "mux_dynamic_uw_per_bit": 0.024,
    "static_power_density_nw_per_um2": 0.0033,
    "xor2_delay_ps": 18.0,
    "register_setup_ps": 45.0,
    "reference_ip_clock_hz": 1e9,
    "reference_modulation_rate_hz": 10e9,
}

FDSOI_28NM = TechnologyLibrary(
    "28nm FDSOI",
    feature_size_nm=28.0,
    supply_voltage_v=1.0,
    blocks=_TABLE_I_BLOCKS,
    calibration=_CALIBRATION,
)
"""The paper's synthesis technology, populated from Table I."""
