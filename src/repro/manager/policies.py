"""Selection policies of the link energy/performance manager.

A policy looks at the candidate configurations (one per available coding
scheme, each already solved into a channel-power breakdown) and picks the
one best matching the request.  The paper motivates two application classes:
real-time traffic with deadlines (favour low communication time) and
throughput/multimedia traffic where energy matters more (favour low power or
low energy per bit, possibly degrading the BER); the policies below cover
both plus a laser-power-budget variant for thermally constrained scenarios.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Protocol, Sequence

from ..config import DEFAULT_CONFIG, PaperConfig
from ..exceptions import InfeasibleDesignError
from ..power.channel import ChannelPowerBreakdown
from ..power.energy import energy_metrics

__all__ = [
    "ConfigurationDecision",
    "SelectionPolicy",
    "MinimumPowerPolicy",
    "MinimumEnergyPolicy",
    "DeadlineConstrainedPolicy",
    "LaserBudgetPolicy",
]


@dataclass(frozen=True)
class ConfigurationDecision:
    """The configuration a policy selected, with its justification."""

    breakdown: ChannelPowerBreakdown
    policy_name: str
    reason: str

    @property
    def code_name(self) -> str:
        """Selected coding scheme."""
        return self.breakdown.code_name

    @property
    def channel_power_w(self) -> float:
        """Per-wavelength channel power of the selected configuration."""
        return self.breakdown.total_power_w

    @property
    def communication_time(self) -> float:
        """Communication-time overhead of the selected configuration."""
        return self.breakdown.communication_time


class SelectionPolicy(Protocol):
    """Protocol implemented by every selection policy."""

    name: str

    def select(
        self, candidates: Sequence[ChannelPowerBreakdown], *, config: PaperConfig
    ) -> ConfigurationDecision:
        """Pick one candidate; raise InfeasibleDesignError if none qualifies."""
        ...


def _feasible(candidates: Sequence[ChannelPowerBreakdown]) -> list[ChannelPowerBreakdown]:
    feasible = [c for c in candidates if c.feasible]
    if not feasible:
        raise InfeasibleDesignError("no candidate configuration is feasible for this request")
    return feasible


@dataclass
class MinimumPowerPolicy:
    """Pick the feasible configuration with the lowest channel power."""

    name: str = "min-power"

    def select(
        self,
        candidates: Sequence[ChannelPowerBreakdown],
        *,
        config: PaperConfig = DEFAULT_CONFIG,
    ) -> ConfigurationDecision:
        """Select the candidate minimising per-wavelength channel power."""
        best = min(_feasible(candidates), key=lambda c: c.total_power_w)
        return ConfigurationDecision(
            breakdown=best,
            policy_name=self.name,
            reason=f"lowest channel power ({best.total_power_mw:.2f} mW per wavelength)",
        )


@dataclass
class MinimumEnergyPolicy:
    """Pick the feasible configuration with the lowest energy per useful bit."""

    name: str = "min-energy"
    ip_referenced: bool = False

    def select(
        self,
        candidates: Sequence[ChannelPowerBreakdown],
        *,
        config: PaperConfig = DEFAULT_CONFIG,
    ) -> ConfigurationDecision:
        """Select the candidate minimising energy per bit."""

        def energy(c: ChannelPowerBreakdown) -> float:
            metrics = energy_metrics(c, config=config)
            return (
                metrics.energy_per_bit_ip_j
                if self.ip_referenced
                else metrics.energy_per_bit_modulation_j
            )

        best = min(_feasible(candidates), key=energy)
        picked_energy = energy(best) * 1e12
        return ConfigurationDecision(
            breakdown=best,
            policy_name=self.name,
            reason=f"lowest energy per bit ({picked_energy:.2f} pJ/bit)",
        )


@dataclass
class DeadlineConstrainedPolicy:
    """Lowest-power configuration whose communication time meets a deadline.

    The deadline is expressed as the maximum tolerable communication-time
    overhead (e.g. 1.2 means "at most 20% slower than an uncoded transfer"),
    which is how the paper frames real-time constraints.
    """

    max_communication_time: float
    name: str = "deadline"

    def select(
        self,
        candidates: Sequence[ChannelPowerBreakdown],
        *,
        config: PaperConfig = DEFAULT_CONFIG,
    ) -> ConfigurationDecision:
        """Select the lowest-power candidate within the deadline."""
        feasible = _feasible(candidates)
        within = [c for c in feasible if c.communication_time <= self.max_communication_time]
        if not within:
            raise InfeasibleDesignError(
                f"no configuration meets the communication-time bound {self.max_communication_time:.2f}"
            )
        best = min(within, key=lambda c: c.total_power_w)
        return ConfigurationDecision(
            breakdown=best,
            policy_name=self.name,
            reason=(
                f"lowest power among CT <= {self.max_communication_time:.2f} "
                f"({best.total_power_mw:.2f} mW, CT = {best.communication_time:.2f})"
            ),
        )


@dataclass
class LaserBudgetPolicy:
    """Fastest configuration whose laser power fits a per-wavelength budget.

    Useful for hot-spot management: the budget caps the laser electrical
    power (thermal headroom), and within it the policy favours performance.
    """

    max_laser_power_w: float
    name: str = "laser-budget"

    def select(
        self,
        candidates: Sequence[ChannelPowerBreakdown],
        *,
        config: PaperConfig = DEFAULT_CONFIG,
    ) -> ConfigurationDecision:
        """Select the fastest candidate under the laser power budget."""
        feasible = _feasible(candidates)
        within = [c for c in feasible if c.laser_power_w <= self.max_laser_power_w]
        if not within:
            raise InfeasibleDesignError(
                f"no configuration keeps the laser under {self.max_laser_power_w * 1e3:.2f} mW"
            )
        best = min(within, key=lambda c: (c.communication_time, c.total_power_w))
        return ConfigurationDecision(
            breakdown=best,
            policy_name=self.name,
            reason=(
                f"fastest scheme with P_laser <= {self.max_laser_power_w * 1e3:.2f} mW "
                f"(CT = {best.communication_time:.2f})"
            ),
        )
