"""Bit-level simulation of one optical link at a solved operating point.

The analytic chain (code → raw BER → SNR → laser power) predicts that a link
designed by :class:`~repro.link.design.OpticalLinkDesigner` meets its target
post-decoding BER.  This simulator closes the loop empirically: it takes a
design point, rebuilds the physical OOK/AWGN channel at the corresponding
received power and crosstalk, pushes random payloads through
encode → transmit → decode, and measures the residual bit error rate.  The
validation example and the integration tests check the measured raw BER
against Eq. 3 and the corrected BER against Eq. 2.

The simulation is batched end to end and rides the packed ``uint64``
substrate: messages are drawn as a ``(B, k)`` matrix, packed, encoded
through the packed table fold, pushed through the channel with one
``(B, n)`` Gaussian noise draw thresholded straight into packed words
(:meth:`OOKAWGNChannel.transmit_batch_packed`), decoded packed, and both
raw and residual bit errors are counted with popcounts.  The random stream
matches the unpacked pipeline draw for draw, so measurements are
bit-identical; codes without the packed API fall back to the unpacked
batch chain.  There is no per-block Python loop either way.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..channel.awgn import OOKAWGNChannel
from ..coding.base import decode_blocks, decode_blocks_packed, encode_blocks, encode_blocks_packed
from ..coding.montecarlo import DEFAULT_BATCH_SIZE, resolve_rng
from ..coding.packed import pack_bits, popcount_rows, prefix_mask
from ..config import DEFAULT_CONFIG, PaperConfig
from ..exceptions import ConfigurationError
from ..link.design import LinkDesignPoint

__all__ = ["LinkSimulationResult", "OpticalLinkSimulator"]


@dataclass(frozen=True)
class LinkSimulationResult:
    """Measured error statistics of a simulated link."""

    code_name: str
    target_ber: float
    analytic_raw_ber: float
    measured_raw_ber: float
    measured_post_decoding_ber: float
    bits_simulated: int
    raw_bit_errors: int
    residual_bit_errors: int
    blocks_with_residual_errors: int
    blocks_simulated: int

    @property
    def block_error_rate(self) -> float:
        """Fraction of decoded blocks still containing at least one error."""
        if self.blocks_simulated == 0:
            return 0.0
        return self.blocks_with_residual_errors / self.blocks_simulated


class OpticalLinkSimulator:
    """Monte-Carlo simulation of a coded optical link."""

    def __init__(
        self,
        code,
        design_point: LinkDesignPoint,
        *,
        config: PaperConfig = DEFAULT_CONFIG,
        rng: np.random.Generator | None = None,
        seed: int | np.random.SeedSequence | None = None,
    ):
        if design_point.signal_power_w <= 0:
            raise ConfigurationError("the design point must carry a positive signal power")
        self._code = code
        self._point = design_point
        self._config = config
        self._rng = resolve_rng(rng, seed)
        self._channel = OOKAWGNChannel(
            design_point.signal_power_w,
            crosstalk_power_w=design_point.crosstalk_power_w,
            extinction_ratio_db=config.extinction_ratio_db,
            responsivity_a_per_w=config.photodetector_responsivity_a_per_w,
            dark_current_a=config.dark_current_a,
            rng=self._rng,
        )

    @property
    def channel(self) -> OOKAWGNChannel:
        """The physical channel model built from the design point."""
        return self._channel

    @property
    def analytic_raw_ber(self) -> float:
        """Raw BER the analytic model expects at this operating point."""
        return self._channel.analytic_ber

    def run(
        self, num_blocks: int = 2000, *, batch_size: int = DEFAULT_BATCH_SIZE
    ) -> LinkSimulationResult:
        """Simulate ``num_blocks`` codewords and collect the error statistics.

        Blocks are simulated ``batch_size`` at a time through the batched
        encode → transmit → decode chain.
        """
        if num_blocks < 1:
            raise ConfigurationError("at least one block must be simulated")
        if batch_size < 1:
            raise ConfigurationError("batch size must be at least 1")
        k = self._code.k
        n = self._code.n
        raw_errors = 0
        residual_errors = 0
        bad_blocks = 0
        raw_bits = 0
        packed_path = (
            getattr(self._code, "encode_batch_packed", None) is not None
            and getattr(self._code, "decode_batch_packed", None) is not None
        )
        message_mask = prefix_mask(n, k) if packed_path else None
        for start in range(0, num_blocks, batch_size):
            count = min(batch_size, num_blocks - start)
            messages = self._rng.integers(0, 2, size=(count, k), dtype=np.uint8)
            if packed_path:
                codeword_words = encode_blocks_packed(self._code, pack_bits(messages))
                received_words = self._channel.transmit_batch_packed(codeword_words, n=n)
                raw_errors += int(popcount_rows(received_words ^ codeword_words).sum())
                raw_bits += count * n
                decoded = decode_blocks_packed(self._code, received_words)
                errors_per_block = popcount_rows(
                    (decoded.corrected_words ^ codeword_words) & message_mask
                )
            else:
                codewords = encode_blocks(self._code, messages)
                received = self._channel.transmit_batch(codewords)
                raw_errors += int(np.count_nonzero(received != codewords))
                raw_bits += int(codewords.size)
                decoded_bits = decode_blocks(self._code, received).message_bits
                errors_per_block = np.count_nonzero(decoded_bits != messages, axis=1)
            residual_errors += int(errors_per_block.sum())
            bad_blocks += int(np.count_nonzero(errors_per_block))
        payload_bits = num_blocks * k
        return LinkSimulationResult(
            code_name=getattr(self._code, "name", type(self._code).__name__),
            target_ber=self._point.target_ber,
            analytic_raw_ber=self.analytic_raw_ber,
            measured_raw_ber=raw_errors / raw_bits,
            measured_post_decoding_ber=residual_errors / payload_bits,
            bits_simulated=payload_bits,
            raw_bit_errors=raw_errors,
            residual_bit_errors=residual_errors,
            blocks_with_residual_errors=bad_blocks,
            blocks_simulated=num_blocks,
        )
