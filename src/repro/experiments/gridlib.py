"""Shared grid-descriptor helpers for indivisible experiments.

Experiments whose computation cannot be usefully sharded (Table I, the
device-curve figures, the headline summary, the calibration audit) still
participate in the orchestrator's uniform grid contract: they declare a
single shard whose payload already carries the rendered ``text`` and CSV
``rows``.  The modules alias these two helpers as their ``sweep_shards`` /
``merge_sweep``, keeping every grid descriptor defined in exactly one
place.
"""

from __future__ import annotations

from typing import Sequence

from ..config import DEFAULT_CONFIG, PaperConfig

__all__ = ["single_sweep_shards", "single_merge_sweep"]


def single_sweep_shards(
    config: PaperConfig = DEFAULT_CONFIG, options: dict | None = None
) -> list[dict]:
    """Grid descriptor of an indivisible experiment: one parameterless shard."""
    return [{}]


def single_merge_sweep(
    payloads: Sequence[dict],
    config: PaperConfig = DEFAULT_CONFIG,
    options: dict | None = None,
) -> tuple[str, list[dict]]:
    """Unwrap the single shard's already-rendered ``(text, rows)`` payload."""
    return payloads[0]["text"], payloads[0]["rows"]
