"""Error-injection models for the bit-level simulators.

Two models are provided:

* :class:`IndependentErrorModel` flips each bit independently with a fixed
  probability — the stochastic twin of the analytic BSC used throughout the
  paper's equations.
* :class:`BurstErrorModel` produces two-state (Gilbert-Elliott style) error
  bursts: a low error probability in the "good" state and a high one in the
  "bad" state, with geometric sojourn times.  Bursts defeat single-error-
  correcting Hamming codes unless an interleaver spreads them, which is the
  behaviour the interleaving experiments demonstrate.

The burst model is vectorized: instead of stepping the two-state Markov
chain one bit at a time in Python, :meth:`BurstErrorModel.error_pattern`
classifies every transition draw at once (toggle / force-good / force-bad /
hold), reconstructs the state sequence with a cumulative scan over those
events, and samples all error draws in one shot.  The pre-vectorization
per-bit loop survives as :meth:`BurstErrorModel._error_pattern_reference`;
both paths consume the random stream identically, so for the same seed they
produce bit-exact identical patterns (see
``tests/simulation/test_burst_vectorized.py``).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..coding.matrices import as_gf2
from ..coding.packed import pack_bits, require_packed_blocks, words_per_block
from ..exceptions import ConfigurationError

__all__ = ["IndependentErrorModel", "BurstErrorModel"]


@dataclass
class IndependentErrorModel:
    """Independent (memoryless) bit flips with a fixed probability."""

    bit_error_probability: float
    rng: np.random.Generator | None = None

    def __post_init__(self) -> None:
        if not 0.0 <= self.bit_error_probability <= 1.0:
            raise ConfigurationError("bit error probability must lie in [0, 1]")
        if self.rng is None:
            self.rng = np.random.default_rng()

    def error_pattern(self, num_bits: int) -> np.ndarray:
        """A 0/1 vector with ones at the positions to flip."""
        if num_bits < 0:
            raise ConfigurationError("number of bits cannot be negative")
        return (self.rng.random(num_bits) < self.bit_error_probability).astype(np.uint8)

    def apply(self, bits) -> np.ndarray:
        """Return a copy of ``bits`` with the error pattern applied.

        Shape-preserving: a ``(B, n)`` block matrix comes back as a
        ``(B, n)`` matrix with one flat random draw for the whole batch.
        """
        stream = as_gf2(bits)
        return stream ^ self.error_pattern(stream.size).reshape(stream.shape)

    def error_mask_packed(self, num_blocks: int, *, n: int) -> np.ndarray:
        """Packed ``(num_blocks, ceil(n/64))`` XOR mask of independent flips.

        Consumes the random stream exactly like
        ``error_pattern(num_blocks * n)`` (one uniform per bit, row-major),
        packed straight from the boolean comparison — no uint8 intermediate.
        An all-clean draw (the common case at operating BERs) skips the
        packing entirely and returns a zeros mask.
        """
        if num_blocks < 0:
            raise ConfigurationError("number of blocks cannot be negative")
        flips = self.rng.random(num_blocks * n) < self.bit_error_probability
        if not flips.any():
            return np.zeros((num_blocks, words_per_block(n)), dtype=np.uint64)
        return pack_bits(flips.reshape(num_blocks, n))

    def sparse_error_positions(self, num_bits: int) -> np.ndarray:
        """Positions of flipped bits, sampled by exact binomial thinning.

        Distribution-identical to thresholding ``num_bits`` uniforms (the
        flip count is ``Binomial(num_bits, p)`` and, given the count, the
        flip set is a uniform random subset), but O(#flips) instead of
        O(#bits): two small draws when errors are rare.  It consumes the
        random stream *differently* from :meth:`error_pattern` /
        :meth:`apply_packed`, so it is a sampling alternative (used by the
        bit-exact network sampler), not a bit-exact twin of them.
        """
        if num_bits < 0:
            raise ConfigurationError("number of bits cannot be negative")
        count = int(self.rng.binomial(num_bits, self.bit_error_probability))
        if count == 0:
            return np.zeros(0, dtype=np.int64)
        if count * count >= num_bits:
            # Dense regime: collision re-draws would thrash; one uniform per
            # bit is cheaper and exact.
            return np.nonzero(self.rng.random(num_bits) < self.bit_error_probability)[0]
        while True:
            positions = np.unique(self.rng.integers(0, num_bits, size=count))
            if positions.size == count:
                return positions

    def apply_packed(self, words, *, n: int) -> np.ndarray:
        """Corrupt a packed ``(B, ceil(n/64))`` matrix of ``n``-bit blocks.

        The flip pattern is drawn exactly like :meth:`apply` on the
        equivalent unpacked ``(B, n)`` matrix (one flat draw in row-major
        order, same stream) and packed into a ``uint64`` XOR mask, so both
        paths corrupt identically for the same generator state.
        """
        matrix = require_packed_blocks(words, n)
        return matrix ^ self.error_mask_packed(matrix.shape[0], n=n)

    @property
    def expected_ber(self) -> float:
        """Expected raw bit error rate of the model."""
        return self.bit_error_probability


@dataclass
class BurstErrorModel:
    """Two-state Gilbert-Elliott burst error model."""

    good_error_probability: float = 1e-6
    bad_error_probability: float = 0.2
    good_to_bad_probability: float = 1e-4
    bad_to_good_probability: float = 0.2
    rng: np.random.Generator | None = None

    def __post_init__(self) -> None:
        for name in (
            "good_error_probability",
            "bad_error_probability",
            "good_to_bad_probability",
            "bad_to_good_probability",
        ):
            value = getattr(self, name)
            if not 0.0 <= value <= 1.0:
                raise ConfigurationError(f"{name} must lie in [0, 1]")
        if self.rng is None:
            self.rng = np.random.default_rng()
        self._in_bad_state = False

    def error_pattern(self, num_bits: int) -> np.ndarray:
        """Generate a burst-correlated error pattern of a given length.

        Vectorized: the per-bit transition draw ``u`` falls into one of
        three disjoint classes that fully determine the transition without
        knowing the current state —

        * ``u < min(p_gb, p_bg)``: both transitions trigger, so whatever the
          state was it flips (*toggle*);
        * ``min <= u < max``: exactly one transition triggers, so the next
          state is fixed regardless of the current one (*force* to good when
          ``p_bg > p_gb``, to bad otherwise);
        * ``u >= max``: neither triggers (*hold*).

        The state at bit ``i`` is therefore the most recent forced state
        (or the carried-in state when no force occurred yet) XOR the parity
        of the toggles since — all computable with cumulative scans.  The
        random stream is consumed exactly like the per-bit reference loop
        (:meth:`_error_pattern_reference`), so both produce bit-identical
        patterns from the same generator state.
        """
        if num_bits < 0:
            raise ConfigurationError("number of bits cannot be negative")
        uniform = self.rng.random(num_bits * 2).reshape(2, num_bits)
        if num_bits == 0:
            return np.zeros(0, dtype=np.uint8)

        p_gb = self.good_to_bad_probability
        p_bg = self.bad_to_good_probability
        low, high = min(p_gb, p_bg), max(p_gb, p_bg)
        transitions = uniform[0]
        toggle = transitions < low
        force = (transitions >= low) & (transitions < high)
        # In the force band exactly the larger-threshold transition fires:
        # good->bad when p_gb is the larger one, bad->good when p_bg is.
        forced_state_is_bad = p_gb > p_bg

        indices = np.arange(num_bits)
        last_force = np.maximum.accumulate(np.where(force, indices, -1))
        toggles_so_far = np.cumsum(toggle)
        # Toggles strictly after the last force (force positions never toggle,
        # so the cumsum at the force index counts only earlier toggles).
        toggles_at_force = toggles_so_far[np.clip(last_force, 0, None)]
        toggles_since = np.where(last_force >= 0, toggles_so_far - toggles_at_force, toggles_so_far)
        base_state = np.where(last_force >= 0, forced_state_is_bad, self._in_bad_state)
        in_bad_state = base_state.astype(bool) ^ (toggles_since % 2).astype(bool)

        probability = np.where(
            in_bad_state, self.bad_error_probability, self.good_error_probability
        )
        self._in_bad_state = bool(in_bad_state[-1])
        return (uniform[1] < probability).astype(np.uint8)

    def _error_pattern_reference(self, num_bits: int) -> np.ndarray:
        """Pre-vectorization per-bit Markov loop, kept as the equivalence oracle.

        Consumes the random stream exactly like :meth:`error_pattern`; the
        burst-model tests assert bit-exact agreement between the two under a
        fixed seed, including the carried-over state across calls.
        """
        if num_bits < 0:
            raise ConfigurationError("number of bits cannot be negative")
        pattern = np.zeros(num_bits, dtype=np.uint8)
        uniform = self.rng.random(num_bits * 2).reshape(2, num_bits)
        for index in range(num_bits):
            if self._in_bad_state:
                if uniform[0, index] < self.bad_to_good_probability:
                    self._in_bad_state = False
            else:
                if uniform[0, index] < self.good_to_bad_probability:
                    self._in_bad_state = True
            probability = (
                self.bad_error_probability if self._in_bad_state else self.good_error_probability
            )
            if uniform[1, index] < probability:
                pattern[index] = 1
        return pattern

    def apply(self, bits) -> np.ndarray:
        """Return a copy of ``bits`` with a burst error pattern applied.

        Shape-preserving; a ``(B, n)`` matrix is corrupted in row-major
        (transmission) order so bursts span adjacent blocks like they would
        on the serialised wire.
        """
        stream = as_gf2(bits)
        return stream ^ self.error_pattern(stream.size).reshape(stream.shape)

    def error_mask_packed(self, num_blocks: int, *, n: int) -> np.ndarray:
        """Packed ``(num_blocks, ceil(n/64))`` burst XOR mask.

        Identical stream consumption and burst placement as
        ``error_pattern(num_blocks * n)`` (bursts span adjacent blocks in
        row-major transmission order), packed into words.
        """
        if num_blocks < 0:
            raise ConfigurationError("number of blocks cannot be negative")
        pattern = self.error_pattern(num_blocks * n)
        if not pattern.any():
            return np.zeros((num_blocks, words_per_block(n)), dtype=np.uint64)
        return pack_bits(pattern.reshape(num_blocks, n))

    def apply_packed(self, words, *, n: int) -> np.ndarray:
        """Corrupt a packed ``(B, ceil(n/64))`` matrix of ``n``-bit blocks.

        Identical stream consumption and burst placement as :meth:`apply`
        on the unpacked twin; the pattern is packed into a ``uint64`` XOR
        mask so the corrupted codewords stay packed.
        """
        matrix = require_packed_blocks(words, n)
        return matrix ^ self.error_mask_packed(matrix.shape[0], n=n)

    @property
    def expected_ber(self) -> float:
        """Long-run average bit error rate of the two-state chain."""
        p_bad = self.good_to_bad_probability / (
            self.good_to_bad_probability + self.bad_to_good_probability
        )
        return (
            p_bad * self.bad_error_probability
            + (1.0 - p_bad) * self.good_error_probability
        )
